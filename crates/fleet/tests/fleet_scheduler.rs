//! Hermetic `Fleet` scheduler tests: a mock transport with scripted host
//! behaviors (success, crash, hang, limited crashes) drives the scheduler
//! through warm serving, retries, quarantine, re-admission, exhaustion,
//! fault injection and divergence diagnosis — no real worker processes.

use nvariant::{DeploymentConfig, NVariantSystemBuilder};
use nvariant_campaign::{CampaignPlan, Scenario};
use nvariant_fleet::{
    Divergence, Fleet, FleetConfig, FleetError, ShardAssignment, TransportError, WorkerHandle,
    WorkerStatus, WorkerTransport,
};
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const ECHO_SERVER: &str = r#"
    fn main() -> int {
        var sock: int; var conn: int; var request: buf[128];
        sock = socket(); bind(sock, 80); listen(sock); setuid(48);
        conn = accept(sock);
        while (conn >= 0) {
            recv(conn, &request, 127);
            send_str(conn, "HTTP/1.0 200 OK\r\n\r\nok");
            close(conn);
            conn = accept(sock);
        }
        return 0;
    }
"#;

/// A 1 config x 1 world x 1 scenario x 4 replicate plan: 4 cells, so a
/// 2-shard split gives each shard 2 round-robin cells.
fn plan() -> CampaignPlan {
    let compiled = Arc::new(
        NVariantSystemBuilder::from_source(ECHO_SERVER)
            .expect("parse echo server")
            .config(DeploymentConfig::TwoVariantUid)
            .compile()
            .expect("compile echo server"),
    );
    CampaignPlan::new("fleet-test")
        .config(compiled)
        .scenario(Scenario::fixed_requests(
            "ping",
            vec![b"GET / HTTP/1.0\r\n\r\n".to_vec()],
        ))
        .replicates(4)
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nvfleet-sched-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// What a mock host does with every attempt it receives.
#[derive(Clone, Debug)]
enum HostBehavior {
    /// Exit successfully and serve the shard's prepared text.
    Ok,
    /// Crash every attempt.
    CrashAlways,
    /// Crash the first `n` attempts, then behave.
    CrashTimes(usize),
    /// Never exit (the scheduler's timeout must kill it).
    Hang,
}

struct MockTransport {
    /// Prepared shard interchange text, indexed by shard.
    texts: Vec<String>,
    behaviors: Mutex<Vec<(String, HostBehavior)>>,
}

impl MockTransport {
    fn new(texts: Vec<String>, behaviors: Vec<(&str, HostBehavior)>) -> Self {
        MockTransport {
            texts,
            behaviors: Mutex::new(
                behaviors
                    .into_iter()
                    .map(|(host, behavior)| (host.to_string(), behavior))
                    .collect(),
            ),
        }
    }
}

struct MockHandle {
    exits_ok: bool,
    hangs: bool,
    killed: bool,
    text: String,
}

impl WorkerHandle for MockHandle {
    fn poll(&mut self) -> WorkerStatus {
        if self.killed {
            return WorkerStatus::Exited {
                success: false,
                detail: "signal: 9 (SIGKILL)".to_string(),
            };
        }
        if self.hangs {
            return WorkerStatus::Running;
        }
        WorkerStatus::Exited {
            success: self.exits_ok,
            detail: if self.exits_ok {
                "exit status: 0".to_string()
            } else {
                "exit status: 1".to_string()
            },
        }
    }

    fn kill(&mut self) {
        self.killed = true;
    }

    fn retrieve(&mut self) -> Result<String, TransportError> {
        Ok(self.text.clone())
    }
}

impl WorkerTransport for MockTransport {
    fn label(&self) -> String {
        "mock".to_string()
    }

    fn spawn(
        &self,
        host: &str,
        assignment: &ShardAssignment,
    ) -> Result<Box<dyn WorkerHandle>, TransportError> {
        let mut behaviors = self.behaviors.lock().unwrap();
        let behavior = behaviors
            .iter_mut()
            .find(|(name, _)| name == host)
            .map(|(_, behavior)| behavior)
            .expect("spawn on an unconfigured host");
        let (exits_ok, hangs) = match behavior {
            HostBehavior::Ok => (true, false),
            HostBehavior::CrashAlways => (false, false),
            HostBehavior::CrashTimes(remaining) => {
                if *remaining > 0 {
                    *remaining -= 1;
                    (false, false)
                } else {
                    (true, false)
                }
            }
            HostBehavior::Hang => (true, true),
        };
        Ok(Box::new(MockHandle {
            exits_ok,
            hangs,
            killed: false,
            text: self.texts[assignment.index].clone(),
        }))
    }
}

fn shard_texts(plan: &CampaignPlan, shards: usize) -> Vec<String> {
    (0..shards)
        .map(|index| plan.run_shard(index, shards, 1).to_shard_text())
        .collect()
}

fn quick_config(shards: usize) -> FleetConfig {
    FleetConfig {
        shards,
        poll_interval: Duration::from_millis(1),
        ..FleetConfig::default()
    }
}

/// A fleet over mock hosts, collecting progress lines.
fn fleet_over<'a>(
    plan: &'a CampaignPlan,
    transport: MockTransport,
    hosts: &[&str],
    config: FleetConfig,
    log: Arc<Mutex<Vec<String>>>,
) -> Fleet<'a> {
    Fleet::new(
        plan,
        Box::new(transport),
        PathBuf::from("/unused/worker"),
        scratch("unused"),
    )
    .hosts(hosts.iter().map(|h| (*h).to_string()).collect())
    .config(config)
    .on_progress(move |line| log.lock().unwrap().push(line.to_string()))
}

#[test]
fn healthy_pool_splits_shards_and_merges_byte_identically() {
    let plan = plan();
    let whole = plan.run(1);
    let texts = shard_texts(&plan, 2);
    let transport = MockTransport::new(
        texts,
        vec![("alpha", HostBehavior::Ok), ("beta", HostBehavior::Ok)],
    );
    let log = Arc::new(Mutex::new(Vec::new()));
    let run = fleet_over(&plan, transport, &["alpha", "beta"], quick_config(2), log)
        .run()
        .expect("healthy run succeeds");

    assert_eq!(run.report.canonical_text(), whole.canonical_text());
    assert_eq!(run.retries, 0);
    assert_eq!(run.warm_shards, 0);
    // Least-loaded assignment spreads 2 shards over 2 hosts: one attempt
    // each, both successful, nobody quarantined.
    for host in &run.hosts {
        assert_eq!(host.attempts, 1, "{host}");
        assert_eq!(host.successes, 1, "{host}");
        assert_eq!(host.failures, 0, "{host}");
        assert!(!host.quarantined, "{host}");
    }
    let summary = run.render_host_summary();
    assert!(summary.contains("host alpha: 1 attempt(s)"), "{summary}");
    assert!(summary.contains("healthy at end of run"), "{summary}");
}

#[test]
fn crashing_host_is_quarantined_and_work_moves_to_the_healthy_one() {
    let plan = plan();
    let whole = plan.run(1);
    let texts = shard_texts(&plan, 2);
    let transport = MockTransport::new(
        texts,
        vec![
            ("flaky", HostBehavior::CrashAlways),
            ("steady", HostBehavior::Ok),
        ],
    );
    let log = Arc::new(Mutex::new(Vec::new()));
    let config = FleetConfig {
        quarantine_after: 1,
        ..quick_config(2)
    };
    let run = fleet_over(
        &plan,
        transport,
        &["flaky", "steady"],
        config,
        Arc::clone(&log),
    )
    .run()
    .expect("the healthy host absorbs the work");

    assert_eq!(run.report.canonical_text(), whole.canonical_text());
    assert_eq!(run.retries, 1);
    let flaky = &run.hosts[0];
    assert_eq!(flaky.name, "flaky");
    assert_eq!(flaky.failures, 1);
    assert_eq!(flaky.quarantines, 1);
    assert!(flaky.quarantined, "stays quarantined: steady is healthy");
    let steady = &run.hosts[1];
    assert_eq!(steady.successes, 2);
    let lines = log.lock().unwrap().join("\n");
    assert!(
        lines.contains("host flaky: quarantined after 1 consecutive failure(s)"),
        "{lines}"
    );
    assert!(run
        .render_host_summary()
        .contains("quarantined at end of run"));
}

#[test]
fn sole_host_is_readmitted_from_quarantine() {
    let plan = plan();
    let texts = shard_texts(&plan, 1);
    let transport = MockTransport::new(texts, vec![("solo", HostBehavior::CrashTimes(1))]);
    let log = Arc::new(Mutex::new(Vec::new()));
    let config = FleetConfig {
        quarantine_after: 1,
        ..quick_config(1)
    };
    let run = fleet_over(&plan, transport, &["solo"], config, Arc::clone(&log))
        .run()
        .expect("re-admission lets the retry land");

    let solo = &run.hosts[0];
    assert_eq!(solo.attempts, 2);
    assert_eq!(solo.failures, 1);
    assert_eq!(solo.quarantines, 1);
    assert!(!solo.quarantined, "re-admitted and then succeeded");
    let lines = log.lock().unwrap().join("\n");
    assert!(lines.contains("re-admitted from quarantine"), "{lines}");
}

#[test]
fn exhausted_shard_fails_the_run_with_every_attempt_reason() {
    let plan = plan();
    let texts = shard_texts(&plan, 1);
    let transport = MockTransport::new(texts, vec![("dead", HostBehavior::CrashAlways)]);
    let log = Arc::new(Mutex::new(Vec::new()));
    let config = FleetConfig {
        attempts: 2,
        ..quick_config(1)
    };
    let error = fleet_over(&plan, transport, &["dead"], config, log)
        .run()
        .expect_err("a dead pool exhausts the shard");
    match &error {
        FleetError::Exhausted {
            shard,
            attempts,
            failures,
        } => {
            assert_eq!(*shard, 0);
            assert_eq!(*attempts, 2);
            assert_eq!(failures.len(), 2);
        }
        other => panic!("expected Exhausted, got {other:?}"),
    }
    let rendered = error.to_string();
    assert!(
        rendered.contains("shard 0: exhausted 2 attempt(s)"),
        "{rendered}"
    );
    assert!(rendered.contains("exit status: 1"), "{rendered}");
}

#[test]
fn hung_worker_is_killed_by_the_attempt_timeout() {
    let plan = plan();
    let texts = shard_texts(&plan, 1);
    let transport = MockTransport::new(texts, vec![("tarpit", HostBehavior::Hang)]);
    let log = Arc::new(Mutex::new(Vec::new()));
    let config = FleetConfig {
        attempts: 1,
        timeout: Duration::from_millis(30),
        ..quick_config(1)
    };
    let error = fleet_over(&plan, transport, &["tarpit"], config, log)
        .run()
        .expect_err("the hung attempt is the only one");
    let rendered = error.to_string();
    assert!(rendered.contains("timed out after"), "{rendered}");
    assert!(rendered.contains("was killed"), "{rendered}");
}

#[test]
fn kill_injection_fires_then_the_retry_collects() {
    let plan = plan();
    let whole = plan.run(1);
    let texts = shard_texts(&plan, 2);
    let transport = MockTransport::new(texts, vec![("alpha", HostBehavior::Ok)]);
    let log = Arc::new(Mutex::new(Vec::new()));
    let config = FleetConfig {
        kill_shards: BTreeSet::from([0]),
        ..quick_config(2)
    };
    let run = fleet_over(&plan, transport, &["alpha"], config, Arc::clone(&log))
        .run()
        .expect("retry after the injected kill");

    assert_eq!(run.report.canonical_text(), whole.canonical_text());
    assert_eq!(run.retries, 1);
    assert_eq!(run.hosts[0].failures, 1);
    let lines = log.lock().unwrap().join("\n");
    assert!(lines.contains("killed by --kill-shard"), "{lines}");
    assert!(lines.contains("shard 0: retrying (attempt 2)"), "{lines}");
    assert!(lines.contains("SIGKILL"), "{lines}");
}

#[test]
fn fully_cached_plan_is_served_warm_without_a_single_spawn() {
    let dir = scratch("warm-cache");
    let plan = plan().with_cache_dir(&dir);
    let whole = plan.run(1); // populates the cache
    let texts = shard_texts(&plan, 2);
    let transport = MockTransport::new(texts, vec![("alpha", HostBehavior::Ok)]);
    let log = Arc::new(Mutex::new(Vec::new()));
    let run = fleet_over(
        &plan,
        transport,
        &["alpha"],
        quick_config(2),
        Arc::clone(&log),
    )
    .run()
    .expect("warm run succeeds");

    assert_eq!(run.report.canonical_text(), whole.canonical_text());
    assert_eq!(run.warm_shards, 2);
    assert_eq!(run.warm_cells, 4);
    assert_eq!(run.hosts[0].attempts, 0, "no worker ever spawned");
    let lines = log.lock().unwrap().join("\n");
    assert!(lines.contains("shard 0: served warm from cache"), "{lines}");
    assert!(lines.contains("shard 1: served warm from cache"), "{lines}");
}

#[test]
fn corrupt_injection_is_diagnosed_to_the_exact_first_coordinate() {
    let dir = scratch("divergence-cache");
    let plan = plan().with_cache_dir(&dir);
    let _ = plan.run(1); // authoritative results into the cache
    let texts = shard_texts(&plan, 2);
    let transport = MockTransport::new(texts, vec![("alpha", HostBehavior::Ok)]);
    let log = Arc::new(Mutex::new(Vec::new()));
    let config = FleetConfig {
        corrupt_shards: BTreeSet::from([1]),
        ..quick_config(2)
    };
    let error = fleet_over(&plan, transport, &["alpha"], config, Arc::clone(&log))
        .run()
        .expect_err("the corrupted shard must be caught");
    match &error {
        FleetError::Divergence {
            shard,
            against,
            divergence,
            probes,
            cells,
        } => {
            assert_eq!(*shard, Some(1));
            assert_eq!(against, "shared cell cache");
            // Shard 1 of 2 over 4 replicates holds cells (0,0,0,1) and
            // (0,0,0,3) round-robin; the corruption hits its first cell.
            match divergence.as_ref() {
                Divergence::Cell {
                    index,
                    coordinates,
                    expected,
                    observed,
                } => {
                    assert_eq!(*index, 0);
                    assert_eq!(*coordinates, (0, 0, 0, 1));
                    assert_ne!(expected, observed);
                }
                Divergence::Length { .. } => panic!("not a length mismatch"),
            }
            assert_eq!(*cells, 2);
            assert!(*probes <= 3, "{probes} probes for 2 cells");
        }
        other => panic!("expected Divergence, got {other:?}"),
    }
    let rendered = error.to_string();
    assert!(
        rendered.contains("(config 0, world 0, scenario 0, replicate 1)"),
        "{rendered}"
    );
    assert!(
        rendered.contains("diverges from shared cell cache"),
        "{rendered}"
    );
}

#[test]
fn uncached_honest_hosts_pass_the_cross_check_trivially() {
    // No cache configured: the cross-check is skipped entirely, and the
    // corruption injection (which needs the cache as the authority) is the
    // only way a valid-but-wrong shard could slip through — which is why
    // campaignd's --corrupt-shard requires --cache-dir.
    let plan = plan();
    let whole = plan.run(1);
    let texts = shard_texts(&plan, 2);
    let transport = MockTransport::new(texts, vec![("alpha", HostBehavior::Ok)]);
    let log = Arc::new(Mutex::new(Vec::new()));
    let run = fleet_over(&plan, transport, &["alpha"], quick_config(2), log)
        .run()
        .expect("honest hosts pass");
    assert_eq!(run.report.canonical_text(), whole.canonical_text());
}
