//! Property tests for the logarithmic divergence finder: over randomly
//! sized streams and mutation positions, the reported coordinate is always
//! the *minimal* differing one, and the probe count stays logarithmic.

use nvariant_fleet::{find_divergence, CellStream, Coordinates, Divergence};
use proptest::prelude::*;

/// One synthetic canonical cell line, salted by `salt` (so two streams with
/// different salts differ everywhere) and optionally mutated at index `i`.
fn line(i: usize, salt: u64, mutate: Option<usize>) -> String {
    if mutate == Some(i) {
        format!("cell {i} salt {salt} MUTATED")
    } else {
        format!("cell {i} salt {salt}")
    }
}

fn coords(i: usize) -> Coordinates {
    (i, i / 2, i / 3, i / 5)
}

/// A digest-only stream of `n` distinct cells.
fn stream(n: usize, salt: u64, mutate: Option<usize>) -> CellStream {
    CellStream::from_lines((0..n).map(|i| line(i, salt, mutate)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reported divergence index is exactly the mutated position — the
    /// minimal differing coordinate — wherever the mutation lands, and the
    /// probe count respects the O(log cells) bound. The evidence callback
    /// recovers the two canonical lines only at the pinpointed index.
    #[test]
    fn reported_coordinate_is_the_minimal_differing_one(
        n in 1usize..300,
        k_raw in any::<usize>(),
        salt in any::<u64>(),
    ) {
        let k = k_raw % n;
        let expected = stream(n, salt, None);
        let observed = stream(n, salt, Some(k));
        let scan = find_divergence(&expected, &observed, |i| {
            (coords(i), line(i, salt, None), line(i, salt, Some(k)))
        });
        match scan.divergence {
            Some(Divergence::Cell { index, coordinates, expected, observed }) => {
                prop_assert_eq!(index, k);
                prop_assert_eq!(coordinates, coords(k));
                prop_assert_eq!(expected, line(k, salt, None));
                prop_assert_eq!(observed, line(k, salt, Some(k)));
            }
            other => prop_assert!(false, "expected a cell divergence, got {:?}", other),
        }
        // 1 shared-prefix probe + binary search over n+1 prefix lengths.
        let log_bound = (usize::BITS - n.leading_zeros()) as usize + 2;
        prop_assert!(
            scan.probes <= log_bound,
            "{} probes exceeds log bound {} for {} cells",
            scan.probes, log_bound, n
        );
    }

    /// Identical streams never report a divergence, regardless of size —
    /// and never ask for cell evidence.
    #[test]
    fn equal_streams_never_diverge(n in 0usize..300, salt in any::<u64>()) {
        let scan = find_divergence(&stream(n, salt, None), &stream(n, salt, None), |i| {
            panic!("evidence requested for cell {i} of equal streams")
        });
        prop_assert_eq!(scan.divergence, None);
        prop_assert_eq!(scan.probes, 1);
    }

    /// A truncated but otherwise honest stream is reported as a length
    /// mismatch naming the exact shared prefix, without evidence recovery.
    #[test]
    fn truncation_is_a_length_mismatch(
        n in 2usize..300,
        cut_raw in any::<usize>(),
        salt in any::<u64>(),
    ) {
        let cut = 1 + cut_raw % (n - 1); // 1..n
        let expected = stream(n, salt, None);
        let observed = stream(cut, salt, None);
        let scan = find_divergence(&expected, &observed, |i| {
            panic!("evidence requested for cell {i} of a pure truncation")
        });
        prop_assert_eq!(
            scan.divergence,
            Some(Divergence::Length { common: cut, expected: n, observed: cut })
        );
    }
}
