//! Property tests for the logarithmic divergence finder: over randomly
//! sized streams and mutation positions, the reported coordinate is always
//! the *minimal* differing one, and the probe count stays logarithmic.

use nvariant_fleet::{find_divergence, CellStream, Divergence};
use proptest::prelude::*;

/// A synthetic stream of `n` distinct cells whose content is salted by
/// `salt` (so two streams with different salts differ everywhere).
fn stream(n: usize, salt: u64, mutate: Option<usize>) -> CellStream {
    CellStream::from_cells((0..n).map(|i| {
        let line = if mutate == Some(i) {
            format!("cell {i} salt {salt} MUTATED")
        } else {
            format!("cell {i} salt {salt}")
        };
        ((i, i / 2, i / 3, i / 5), line)
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reported divergence index is exactly the mutated position — the
    /// minimal differing coordinate — wherever the mutation lands, and the
    /// probe count respects the O(log cells) bound.
    #[test]
    fn reported_coordinate_is_the_minimal_differing_one(
        n in 1usize..300,
        k_raw in any::<usize>(),
        salt in any::<u64>(),
    ) {
        let k = k_raw % n;
        let expected = stream(n, salt, None);
        let observed = stream(n, salt, Some(k));
        let scan = find_divergence(&expected, &observed);
        match scan.divergence {
            Some(Divergence::Cell { index, coordinates, .. }) => {
                prop_assert_eq!(index, k);
                prop_assert_eq!(coordinates, (k, k / 2, k / 3, k / 5));
            }
            other => prop_assert!(false, "expected a cell divergence, got {:?}", other),
        }
        // 1 shared-prefix probe + binary search over n+1 prefix lengths.
        let log_bound = (usize::BITS - n.leading_zeros()) as usize + 2;
        prop_assert!(
            scan.probes <= log_bound,
            "{} probes exceeds log bound {} for {} cells",
            scan.probes, log_bound, n
        );
    }

    /// Identical streams never report a divergence, regardless of size.
    #[test]
    fn equal_streams_never_diverge(n in 0usize..300, salt in any::<u64>()) {
        let scan = find_divergence(&stream(n, salt, None), &stream(n, salt, None));
        prop_assert_eq!(scan.divergence, None);
        prop_assert_eq!(scan.probes, 1);
    }

    /// A truncated but otherwise honest stream is reported as a length
    /// mismatch naming the exact shared prefix.
    #[test]
    fn truncation_is_a_length_mismatch(
        n in 2usize..300,
        cut_raw in any::<usize>(),
        salt in any::<u64>(),
    ) {
        let cut = 1 + cut_raw % (n - 1); // 1..n
        let expected = stream(n, salt, None);
        let observed = stream(cut, salt, None);
        let scan = find_divergence(&expected, &observed);
        prop_assert_eq!(
            scan.divergence,
            Some(Divergence::Length { common: cut, expected: n, observed: cut })
        );
    }
}
