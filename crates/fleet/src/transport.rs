//! The worker transport abstraction: how a coordinator starts a
//! `campaign_report --shard` worker on a host, watches it, and gets the
//! shard interchange file back.
//!
//! Two implementations ship with the crate:
//!
//! * [`LocalProcessTransport`] — today's single-host path: workers are
//!   plain child processes and the shard file is read straight off the
//!   coordinator's filesystem.
//! * [`CommandTransport`] — workers run through an arbitrary command
//!   prefix (`ssh {host}`, a container runner, or the hermetic
//!   `scripts/fake_remote.sh {host}` test double). The shard file lives on
//!   the *remote* side, so retrieval also goes through the prefix (`...
//!   cat <file>`), exactly like `ssh host cat /path/shard.txt` would.
//!
//! The [`Fleet`](crate::Fleet) scheduler is written entirely against the
//! [`WorkerTransport`] / [`WorkerHandle`] traits, so host pools, health
//! accounting, retries and divergence diagnosis are identical whichever
//! transport carries the workers.

use std::fmt;
use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Why a transport operation failed (spawn refused, retrieval failed, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransportError {
    /// Human-readable description.
    pub message: String,
}

impl TransportError {
    /// Creates an error from anything displayable.
    pub fn new(message: impl Into<String>) -> Self {
        TransportError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TransportError {}

/// What one shard execution needs from a worker: which slice of the plan to
/// run, which binary runs it, and the extra arguments (quick mode, worker
/// threads, cache flags) the coordinator forwards verbatim.
#[derive(Clone, Debug)]
pub struct ShardAssignment {
    /// Shard index (`--shard index/count`).
    pub index: usize,
    /// Total shard count.
    pub count: usize,
    /// The worker binary (`campaign_report`). Must be an absolute path so
    /// command-prefix transports that change the working directory still
    /// find it.
    pub worker_bin: PathBuf,
    /// Extra worker arguments, forwarded before the `--shard`/`--out` pair.
    pub worker_args: Vec<String>,
    /// Coordinator-local scratch directory for shard files. Transports that
    /// execute remotely ignore it and use a host-side path instead.
    pub scratch_dir: PathBuf,
}

impl ShardAssignment {
    /// The shard file's name, identical on every side of every transport.
    #[must_use]
    pub fn shard_file_name(&self) -> String {
        format!("shard-{}-of-{}.txt", self.index, self.count)
    }
}

/// The observable state of a spawned worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkerStatus {
    /// Still executing.
    Running,
    /// Finished (or failed to be observed).
    Exited {
        /// Whether the worker reported success (exit status 0).
        success: bool,
        /// Human-readable exit detail (`exit status: 0`, `signal: 9
        /// (SIGKILL)`, a wait error, ...).
        detail: String,
    },
}

/// A live worker attempt: poll it, kill it, and — after a successful exit —
/// retrieve the shard interchange text it produced.
pub trait WorkerHandle {
    /// Non-blocking status check.
    fn poll(&mut self) -> WorkerStatus;

    /// Polls until the worker exits or `deadline` passes; returns
    /// [`WorkerStatus::Running`] only when the deadline expired first.
    fn wait_deadline(&mut self, deadline: Instant) -> WorkerStatus {
        loop {
            match self.poll() {
                WorkerStatus::Running if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                status => return status,
            }
        }
    }

    /// Terminates the worker (idempotent; errors are swallowed — a worker
    /// that already exited cannot be killed again).
    fn kill(&mut self);

    /// Retrieves the shard file the worker wrote, as text. Only meaningful
    /// after a successful exit; a missing or unreadable file is an error
    /// the scheduler counts against the attempt.
    fn retrieve(&mut self) -> Result<String, TransportError>;

    /// Retrieves the shard file as a buffered byte stream, so the
    /// scheduler can spool and validate it without ever holding the whole
    /// file in memory. The default implementation wraps
    /// [`retrieve`](Self::retrieve) (fine for test doubles); real
    /// transports override it to stream from disk or from the retrieval
    /// command's pipe.
    fn retrieve_stream(&mut self) -> Result<Box<dyn BufRead + Send>, TransportError> {
        self.retrieve()
            .map(|text| Box::new(std::io::Cursor::new(text.into_bytes())) as _)
    }
}

/// The streaming side of a command-prefix retrieval: the retrieval child's
/// piped stdout, with the exit status checked at EOF so a failed `cat`
/// surfaces as a read error instead of a silently truncated shard.
struct CommandStreamReader {
    child: Child,
    stdout: std::process::ChildStdout,
    finished: bool,
}

impl Read for CommandStreamReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.finished {
            return Ok(0);
        }
        let n = self.stdout.read(buf)?;
        if n == 0 {
            self.finished = true;
            let status = self.child.wait()?;
            if !status.success() {
                return Err(std::io::Error::other(format!(
                    "retrieval command exited with {status}"
                )));
            }
        }
        Ok(n)
    }
}

impl Drop for CommandStreamReader {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// How the coordinator reaches a host pool: spawn a shard worker on a named
/// host and hand back a [`WorkerHandle`].
pub trait WorkerTransport {
    /// Short human-readable label for run headers (`local process`,
    /// `command prefix "ssh {host}"`).
    fn label(&self) -> String;

    /// Starts `assignment` on `host`.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] when the worker cannot be started at
    /// all (the scheduler counts this against the attempt cap like a
    /// crash).
    fn spawn(
        &self,
        host: &str,
        assignment: &ShardAssignment,
    ) -> Result<Box<dyn WorkerHandle>, TransportError>;
}

/// A child process plus where its shard file will appear locally.
struct ProcessHandle {
    child: Child,
    /// How to read the shard file back once the child exits.
    retrieval: Retrieval,
}

enum Retrieval {
    /// Read a coordinator-local file.
    LocalFile(PathBuf),
    /// Run a command (the transport's prefix + `cat <file>`) and take its
    /// stdout.
    Command(Command),
}

impl WorkerHandle for ProcessHandle {
    fn poll(&mut self) -> WorkerStatus {
        match self.child.try_wait() {
            Ok(None) => WorkerStatus::Running,
            Ok(Some(status)) => WorkerStatus::Exited {
                success: status.success(),
                detail: status.to_string(),
            },
            Err(error) => WorkerStatus::Exited {
                success: false,
                detail: format!("wait failed: {error}"),
            },
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn retrieve(&mut self) -> Result<String, TransportError> {
        match &mut self.retrieval {
            Retrieval::LocalFile(path) => std::fs::read_to_string(&*path).map_err(|error| {
                TransportError::new(format!("cannot read {}: {error}", path.display()))
            }),
            Retrieval::Command(command) => {
                let output = command.output().map_err(|error| {
                    TransportError::new(format!("retrieval command failed to start: {error}"))
                })?;
                if !output.status.success() {
                    return Err(TransportError::new(format!(
                        "retrieval command exited with {}: {}",
                        output.status,
                        String::from_utf8_lossy(&output.stderr).trim()
                    )));
                }
                String::from_utf8(output.stdout)
                    .map_err(|_| TransportError::new("retrieved shard file is not UTF-8"))
            }
        }
    }

    fn retrieve_stream(&mut self) -> Result<Box<dyn BufRead + Send>, TransportError> {
        match &mut self.retrieval {
            Retrieval::LocalFile(path) => {
                let file = std::fs::File::open(&*path).map_err(|error| {
                    TransportError::new(format!("cannot read {}: {error}", path.display()))
                })?;
                Ok(Box::new(BufReader::new(file)))
            }
            Retrieval::Command(command) => {
                let mut child = command
                    .stdout(Stdio::piped())
                    .stderr(Stdio::null())
                    .spawn()
                    .map_err(|error| {
                        TransportError::new(format!("retrieval command failed to start: {error}"))
                    })?;
                let stdout = child
                    .stdout
                    .take()
                    .expect("retrieval stdout was requested piped");
                Ok(Box::new(BufReader::new(CommandStreamReader {
                    child,
                    stdout,
                    finished: false,
                })))
            }
        }
    }
}

impl Drop for ProcessHandle {
    fn drop(&mut self) {
        // Never leave an orphan worker behind a coordinator that bailed
        // out; killing an already-reaped child is a harmless error.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// The single-host transport: workers are plain child processes of the
/// coordinator and shard files are read off the shared filesystem. This is
/// exactly the `std::process` path `campaignd` used before the fleet
/// abstraction existed, factored behind the trait.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalProcessTransport;

impl WorkerTransport for LocalProcessTransport {
    fn label(&self) -> String {
        "local process".to_string()
    }

    fn spawn(
        &self,
        _host: &str,
        assignment: &ShardAssignment,
    ) -> Result<Box<dyn WorkerHandle>, TransportError> {
        let out_file = assignment.scratch_dir.join(assignment.shard_file_name());
        let mut command = Command::new(&assignment.worker_bin);
        command
            .args(&assignment.worker_args)
            .arg("--shard")
            .arg(format!("{}/{}", assignment.index, assignment.count))
            .arg("--out")
            .arg(&out_file)
            // Worker chatter stays out of the coordinator's report stream;
            // stderr passes through so real worker errors surface.
            .stdout(Stdio::null());
        let child = command
            .spawn()
            .map_err(|error| TransportError::new(format!("spawn failed: {error}")))?;
        Ok(Box::new(ProcessHandle {
            child,
            retrieval: Retrieval::LocalFile(out_file),
        }))
    }
}

/// A transport that runs every worker through a command prefix with the
/// host name substituted for `{host}` — `ssh {host}` for a real fleet, or
/// `scripts/fake_remote.sh {host}` for the hermetic CI double, which gives
/// each simulated host its own scratch directory plus injectable latency,
/// dropped shard files, and crashes.
///
/// The shard file is written *host-side* (the worker gets a bare file name,
/// resolved in whatever working directory the prefix lands it in), so
/// retrieval also goes through the prefix: `<prefix> cat <file>`. That
/// keeps the transport honest — nothing ever assumes the worker shares a
/// filesystem with the coordinator.
#[derive(Clone, Debug)]
pub struct CommandTransport {
    prefix: Vec<String>,
}

impl CommandTransport {
    /// Builds the transport from prefix tokens; every `{host}` occurrence
    /// is substituted with the target host name at spawn time.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the prefix is empty.
    pub fn new(prefix: impl IntoIterator<Item = String>) -> Result<Self, TransportError> {
        let prefix: Vec<String> = prefix.into_iter().collect();
        if prefix.is_empty() {
            return Err(TransportError::new(
                "command transport needs at least one prefix token (e.g. \"ssh {host}\")",
            ));
        }
        Ok(CommandTransport { prefix })
    }

    /// Parses a whitespace-separated prefix template (`"ssh {host}"`).
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] if the template has no tokens.
    pub fn from_template(template: &str) -> Result<Self, TransportError> {
        Self::new(template.split_whitespace().map(String::from))
    }

    /// The prefix with `{host}` substituted.
    fn resolved_prefix(&self, host: &str) -> Vec<String> {
        self.prefix
            .iter()
            .map(|token| token.replace("{host}", host))
            .collect()
    }

    fn command_for(&self, host: &str) -> Command {
        let resolved = self.resolved_prefix(host);
        let mut command = Command::new(&resolved[0]);
        command.args(&resolved[1..]);
        command
    }
}

impl WorkerTransport for CommandTransport {
    fn label(&self) -> String {
        format!("command prefix {:?}", self.prefix.join(" "))
    }

    fn spawn(
        &self,
        host: &str,
        assignment: &ShardAssignment,
    ) -> Result<Box<dyn WorkerHandle>, TransportError> {
        let out_file = assignment.shard_file_name();
        let mut command = self.command_for(host);
        command
            .arg(&assignment.worker_bin)
            .args(&assignment.worker_args)
            .arg("--shard")
            .arg(format!("{}/{}", assignment.index, assignment.count))
            .arg("--out")
            .arg(&out_file)
            .stdout(Stdio::null());
        let child = command
            .spawn()
            .map_err(|error| TransportError::new(format!("spawn via prefix failed: {error}")))?;
        let mut retrieve = self.command_for(host);
        retrieve.arg("cat").arg(&out_file);
        Ok(Box::new(ProcessHandle {
            child,
            retrieval: Retrieval::Command(retrieve),
        }))
    }
}

/// Where a transport resolves a path that tests and callers may need to
/// clean up: command transports keep shard files host-side, local ones in
/// the scratch directory.
#[must_use]
pub fn local_shard_path(scratch_dir: &Path, index: usize, count: usize) -> PathBuf {
    scratch_dir.join(format!("shard-{index}-of-{count}.txt"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nvfleet-transport-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    /// Writes an executable shell script and returns its path.
    fn script(dir: &Path, name: &str, body: &str) -> PathBuf {
        use std::os::unix::fs::PermissionsExt;
        let path = dir.join(name);
        std::fs::write(&path, format!("#!/bin/sh\n{body}")).expect("write script");
        let mut perms = std::fs::metadata(&path).expect("stat script").permissions();
        perms.set_mode(0o755);
        std::fs::set_permissions(&path, perms).expect("chmod script");
        path
    }

    fn assignment(dir: &Path, worker: &Path) -> ShardAssignment {
        ShardAssignment {
            index: 1,
            count: 4,
            worker_bin: worker.to_path_buf(),
            worker_args: vec!["--quick".to_string()],
            scratch_dir: dir.to_path_buf(),
        }
    }

    #[test]
    fn local_transport_runs_a_worker_and_reads_its_file_back() {
        let dir = scratch("local-ok");
        // A stand-in worker: scans for --out and writes a marker there.
        let worker = script(
            &dir,
            "worker.sh",
            r#"out=""
while [ $# -gt 0 ]; do
  if [ "$1" = "--out" ]; then out="$2"; fi
  shift
done
printf 'marker %s\n' "$NVFLEET_TEST_TAG" > "$out"
"#,
        );
        let transport = LocalProcessTransport;
        assert_eq!(transport.label(), "local process");
        std::env::set_var("NVFLEET_TEST_TAG", "local");
        let mut handle = transport
            .spawn("anyhost", &assignment(&dir, &worker))
            .expect("spawn");
        let status = handle.wait_deadline(Instant::now() + Duration::from_secs(10));
        assert_eq!(
            status,
            WorkerStatus::Exited {
                success: true,
                detail: "exit status: 0".to_string()
            }
        );
        assert_eq!(handle.retrieve().expect("retrieve"), "marker local\n");
        // The local transport keeps the shard file in the scratch dir.
        assert!(local_shard_path(&dir, 1, 4).is_file());
    }

    #[test]
    fn command_transport_substitutes_the_host_and_retrieves_through_the_prefix() {
        let dir = scratch("cmd-ok");
        // The prefix double: first argument is the host, the rest is the
        // command, executed in a per-host scratch dir (a miniature of
        // scripts/fake_remote.sh).
        let prefix = script(
            &dir,
            "prefix.sh",
            r#"host="$1"; shift
mkdir -p "$NVFLEET_TEST_ROOT/$host"
cd "$NVFLEET_TEST_ROOT/$host" || exit 9
exec "$@"
"#,
        );
        let worker = script(
            &dir,
            "worker.sh",
            r#"out=""
shard=""
while [ $# -gt 0 ]; do
  if [ "$1" = "--out" ]; then out="$2"; fi
  if [ "$1" = "--shard" ]; then shard="$2"; fi
  shift
done
printf 'host %s shard %s\n' "$(basename "$(pwd)")" "$shard" > "$out"
"#,
        );
        std::env::set_var("NVFLEET_TEST_ROOT", dir.join("remotes"));
        let transport =
            CommandTransport::from_template(&format!("{} {{host}}", prefix.display())).unwrap();
        assert!(transport.label().contains("{host}"));
        let mut handle = transport
            .spawn("alpha", &assignment(&dir, &worker))
            .expect("spawn");
        let status = handle.wait_deadline(Instant::now() + Duration::from_secs(10));
        assert_eq!(
            status,
            WorkerStatus::Exited {
                success: true,
                detail: "exit status: 0".to_string()
            }
        );
        // Retrieval went through the prefix: the file only exists in the
        // simulated host's scratch dir, not the coordinator's.
        assert_eq!(
            handle.retrieve().expect("retrieve"),
            "host alpha shard 1/4\n"
        );
        assert!(!local_shard_path(&dir, 1, 4).exists());
        assert!(dir.join("remotes/alpha/shard-1-of-4.txt").is_file());
    }

    #[test]
    fn kill_terminates_a_running_worker() {
        let dir = scratch("kill");
        let worker = script(&dir, "sleeper.sh", "sleep 60\n");
        let transport = LocalProcessTransport;
        let mut handle = transport
            .spawn("anyhost", &assignment(&dir, &worker))
            .expect("spawn");
        assert_eq!(handle.poll(), WorkerStatus::Running);
        handle.kill();
        let status = handle.wait_deadline(Instant::now() + Duration::from_secs(10));
        match status {
            WorkerStatus::Exited { success, detail } => {
                assert!(!success);
                assert!(detail.contains("signal"), "{detail}");
            }
            WorkerStatus::Running => panic!("worker survived kill"),
        }
        // The shard file was never written: retrieval is a clean error.
        assert!(handle.retrieve().is_err());
    }

    #[test]
    fn failed_retrieval_through_the_prefix_is_an_error_not_a_panic() {
        let dir = scratch("cmd-drop");
        // A prefix whose `cat` side always fails: simulates a dropped shard
        // file on the remote host.
        let prefix = script(&dir, "prefix.sh", "shift\nexec \"$@\"\n");
        let worker = script(&dir, "worker.sh", "exit 0\n");
        let transport =
            CommandTransport::from_template(&format!("{} {{host}}", prefix.display())).unwrap();
        let mut assignment = assignment(&dir, &worker);
        assignment.index = 3;
        let mut handle = transport.spawn("beta", &assignment).expect("spawn");
        let status = handle.wait_deadline(Instant::now() + Duration::from_secs(10));
        assert!(matches!(status, WorkerStatus::Exited { success: true, .. }));
        // `cat shard-3-of-4.txt` runs in this process's cwd where no such
        // file exists — the retrieval error names the failure.
        let error = handle.retrieve().expect_err("missing remote file");
        assert!(error.message.contains("retrieval command"), "{error}");
    }

    #[test]
    fn empty_prefix_templates_are_rejected() {
        assert!(CommandTransport::from_template("   ").is_err());
        assert!(CommandTransport::new(Vec::<String>::new()).is_err());
    }

    #[test]
    fn spawn_failure_is_a_transport_error() {
        let dir = scratch("no-such-bin");
        let transport = LocalProcessTransport;
        let missing = dir.join("does-not-exist");
        let error = transport
            .spawn("anyhost", &assignment(&dir, &missing))
            .err()
            .expect("missing binary cannot spawn");
        assert!(error.message.contains("spawn failed"), "{error}");
    }
}
