//! The logarithmic divergence finder: given two canonical per-cell streams
//! that *should* be identical (a retrieved shard vs the shared cache, or a
//! merged report vs a verification re-run), locate the **first differing
//! cell coordinate** in O(log cells) stream comparisons instead of diffing
//! whole reports byte-by-byte.
//!
//! The trick is the classic first-divergence search over a prefix-digest
//! oracle: a [`CellStream`] extends one chained FNV-1a digest per prefix
//! length while ingesting its cells (O(n) once, O(1) per probe), and
//! [`find_divergence`] binary-searches for the longest common prefix. Two
//! streams agree on a prefix iff their prefix digests match — the chaining
//! makes prefix equality monotone, so "first differing index" is the
//! boundary the binary search lands on. (A digest collision would need two
//! different prefixes to collide in 64 bits; for campaign-sized streams the
//! odds are astronomically small, and the final report comparison still
//! catches it.)
//!
//! The stream is **digest-only**: it keeps 8 bytes per cell (the prefix
//! digest chain), never the canonical lines themselves, so a coordinator
//! can ingest a million-cell shard without holding its text. The located
//! index is recovered to human-readable evidence through the `cell_at`
//! callback of [`find_divergence`] — invoked at most once, so callers can
//! afford to re-stream their source to materialize that single cell.

use std::fmt;

use nvariant_types::fnv::Fnv1a;

/// A cell's position in the campaign matrix:
/// (config, world, scenario, replicate).
pub type Coordinates = (usize, usize, usize, usize);

/// An ordered stream of canonical cell lines reduced to O(1)-comparable
/// prefix digests — 8 bytes of state per ingested cell, no buffered lines.
///
/// Build one per side (expected vs observed) over the *same* enumeration
/// order — for campaign reports that is the plan's canonical cell order,
/// via [`CampaignReport::canonical_cells`].
///
/// [`CampaignReport::canonical_cells`]:
///     nvariant_campaign::CampaignReport::canonical_cells
#[derive(Clone, Debug, Default)]
pub struct CellStream {
    /// `prefix_digests[k]` = chained digest of the first `k` lines;
    /// `prefix_digests[0]` is the digest of the empty stream.
    prefix_digests: Vec<u64>,
    hasher: Fnv1a,
}

impl CellStream {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        let hasher = Fnv1a::new();
        CellStream {
            prefix_digests: vec![hasher.finish()],
            hasher,
        }
    }

    /// Builds a stream from canonical lines, in order.
    #[must_use]
    pub fn from_lines<S: AsRef<str>>(lines: impl IntoIterator<Item = S>) -> Self {
        let mut stream = CellStream::new();
        for line in lines {
            stream.push(line.as_ref());
        }
        stream
    }

    /// Builds the stream of a report's canonical cells, in report order.
    /// Each line is rendered, digested and dropped — nothing is buffered.
    #[must_use]
    pub fn from_report(report: &nvariant_campaign::CampaignReport) -> Self {
        Self::from_lines(report.canonical_cells().map(|(_, line)| line))
    }

    /// Appends one cell's canonical line; the prefix digest chain extends
    /// in O(1) and the line is not retained.
    pub fn push(&mut self, line: &str) {
        // Length-prefixed write: "ab" + "c" cannot alias "a" + "bc".
        self.hasher.write_str(line);
        self.prefix_digests.push(self.hasher.finish());
    }

    /// Number of cells in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prefix_digests.len() - 1
    }

    /// Whether the stream has no cells.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Digest of the first `len` cells (O(1)). Panics if `len > self.len()`.
    #[must_use]
    pub fn prefix_digest(&self, len: usize) -> u64 {
        self.prefix_digests[len]
    }
}

/// Where two streams first disagree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Divergence {
    /// Both streams have a cell at `index` and the cells differ; this is
    /// the *first* such index.
    Cell {
        /// Index of the first differing cell in canonical order.
        index: usize,
        /// That cell's matrix coordinates
        /// (config, world, scenario, replicate), taken from the expected
        /// stream.
        coordinates: Coordinates,
        /// The expected side's rendered canonical line.
        expected: String,
        /// The observed side's rendered canonical line.
        observed: String,
    },
    /// One stream is a strict prefix of the other: every shared cell
    /// agrees but the lengths differ.
    Length {
        /// Number of cells the streams share (all equal).
        common: usize,
        /// Expected stream length.
        expected: usize,
        /// Observed stream length.
        observed: usize,
    },
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Divergence::Cell {
                index,
                coordinates: (c, w, s, r),
                expected,
                observed,
            } => {
                writeln!(
                    f,
                    "first divergence at cell #{index} (config {c}, world {w}, scenario {s}, replicate {r}):"
                )?;
                writeln!(f, "  expected: {expected}")?;
                write!(f, "  observed: {observed}")
            }
            Divergence::Length {
                common,
                expected,
                observed,
            } => write!(
                f,
                "streams agree on all {common} shared cells but differ in length: expected {expected} cells, observed {observed}"
            ),
        }
    }
}

/// The outcome of a divergence scan: the first disagreement (if any) and
/// how many prefix-digest probes the search spent finding it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivergenceScan {
    /// `None` when the streams are identical.
    pub divergence: Option<Divergence>,
    /// Prefix-digest comparisons performed — bounded by
    /// ⌈log₂(cells)⌉ + 2, the "O(log cells)" the fleet summary reports.
    pub probes: usize,
}

/// Locates the first cell where `observed` disagrees with `expected`, in
/// O(log cells) prefix-digest probes.
///
/// The streams carry digests only, so the evidence for a located cell
/// divergence is recovered through `cell_at`: given the first differing
/// index, it returns that cell's matrix coordinates (from the expected
/// side) plus the expected and observed canonical lines. It is invoked at
/// most once per scan — only when a cell divergence exists — so callers may
/// re-stream a spool file or re-query a cache to answer it.
#[must_use]
pub fn find_divergence(
    expected: &CellStream,
    observed: &CellStream,
    cell_at: impl FnOnce(usize) -> (Coordinates, String, String),
) -> DivergenceScan {
    let shared = expected.len().min(observed.len());
    let mut probes = 0;

    // One probe settles the whole shared prefix.
    probes += 1;
    if expected.prefix_digest(shared) == observed.prefix_digest(shared) {
        let divergence = if expected.len() == observed.len() {
            None
        } else {
            Some(Divergence::Length {
                common: shared,
                expected: expected.len(),
                observed: observed.len(),
            })
        };
        return DivergenceScan { divergence, probes };
    }

    // Invariant: prefixes of length `lo` agree, prefixes of length `hi`
    // disagree. Chained digests make prefix equality monotone, so binary
    // search finds the boundary; the first differing cell is index `lo`.
    let (mut lo, mut hi) = (0_usize, shared);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if expected.prefix_digest(mid) == observed.prefix_digest(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }

    let (coordinates, expected_line, observed_line) = cell_at(lo);
    DivergenceScan {
        divergence: Some(Divergence::Cell {
            index: lo,
            coordinates,
            expected: expected_line,
            observed: observed_line,
        }),
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: usize, corrupted: bool) -> String {
        if corrupted {
            format!("cell line {i} CORRUPTED")
        } else {
            format!("cell line {i}")
        }
    }

    fn coords(i: usize) -> Coordinates {
        (i, i + 1, i + 2, i + 3)
    }

    /// A synthetic stream of `n` cells with distinct lines.
    fn synthetic(n: usize) -> CellStream {
        CellStream::from_lines((0..n).map(|i| line(i, false)))
    }

    /// `synthetic(n)` with the cell at `k` rewritten.
    fn mutated(n: usize, k: usize) -> CellStream {
        CellStream::from_lines((0..n).map(|i| line(i, i == k)))
    }

    /// The recovery callback for a `synthetic` vs `mutated(_, k)` scan.
    fn recover(k: usize) -> impl FnOnce(usize) -> (Coordinates, String, String) {
        move |i| (coords(i), line(i, false), line(i, i == k))
    }

    /// A callback for scans that must settle without a cell divergence.
    fn unreachable_recover(i: usize) -> (Coordinates, String, String) {
        panic!("cell_at invoked at {i} for a scan with no cell divergence")
    }

    fn max_probes(n: usize) -> usize {
        // One shared-prefix probe + a binary search over at most n states.
        (usize::BITS - n.leading_zeros()) as usize + 2
    }

    #[test]
    fn equal_streams_have_no_divergence_in_one_probe() {
        let scan = find_divergence(&synthetic(100), &synthetic(100), unreachable_recover);
        assert_eq!(scan.divergence, None);
        assert_eq!(scan.probes, 1);
    }

    #[test]
    fn empty_streams_are_equal() {
        let scan = find_divergence(&CellStream::new(), &CellStream::new(), unreachable_recover);
        assert_eq!(scan.divergence, None);
    }

    #[test]
    fn first_cell_divergence_is_found() {
        let scan = find_divergence(&synthetic(64), &mutated(64, 0), recover(0));
        match scan.divergence.expect("diverges") {
            Divergence::Cell {
                index,
                coordinates,
                expected,
                observed,
            } => {
                assert_eq!(index, 0);
                assert_eq!(coordinates, (0, 1, 2, 3));
                assert_eq!(expected, "cell line 0");
                assert_eq!(observed, "cell line 0 CORRUPTED");
            }
            Divergence::Length { .. } => panic!("not a length mismatch"),
        }
        assert!(scan.probes <= max_probes(64), "{} probes", scan.probes);
    }

    #[test]
    fn last_cell_divergence_is_found() {
        let scan = find_divergence(&synthetic(64), &mutated(64, 63), recover(63));
        match scan.divergence.expect("diverges") {
            Divergence::Cell { index, .. } => assert_eq!(index, 63),
            Divergence::Length { .. } => panic!("not a length mismatch"),
        }
        assert!(scan.probes <= max_probes(64), "{} probes", scan.probes);
    }

    #[test]
    fn middle_divergence_reports_the_first_of_two() {
        // Cells 20 and 40 both differ; the finder must name 20.
        let base = synthetic(64);
        let observed = CellStream::from_lines((0..64).map(|i| line(i, i == 20 || i == 40)));
        let scan = find_divergence(&base, &observed, |i| {
            (coords(i), line(i, false), line(i, i == 20 || i == 40))
        });
        match scan.divergence.expect("diverges") {
            Divergence::Cell {
                index, coordinates, ..
            } => {
                assert_eq!(index, 20);
                assert_eq!(coordinates, (20, 21, 22, 23));
            }
            Divergence::Length { .. } => panic!("not a length mismatch"),
        }
    }

    #[test]
    fn length_mismatch_with_equal_shared_prefix() {
        let scan = find_divergence(&synthetic(50), &synthetic(40), unreachable_recover);
        assert_eq!(
            scan.divergence,
            Some(Divergence::Length {
                common: 40,
                expected: 50,
                observed: 40
            })
        );
        assert_eq!(scan.probes, 1);
    }

    #[test]
    fn differing_cell_wins_over_length_mismatch() {
        // Shorter stream that also differs at cell 5: the cell divergence
        // is earlier, so it is what gets reported.
        let tampered = |i: usize| {
            if i == 5 {
                "tampered".to_string()
            } else {
                line(i, false)
            }
        };
        let observed = CellStream::from_lines((0..40).map(tampered));
        let scan = find_divergence(&synthetic(50), &observed, |i| {
            (coords(i), line(i, false), tampered(i))
        });
        match scan.divergence.expect("diverges") {
            Divergence::Cell { index, .. } => assert_eq!(index, 5),
            Divergence::Length { .. } => panic!("cell divergence precedes length mismatch"),
        }
    }

    #[test]
    fn probe_count_is_logarithmic_not_linear() {
        // 4096 cells: a linear scan would need thousands of comparisons;
        // the finder stays within log2(4096) + 2 = 14.
        for k in [0, 1, 2048, 4094, 4095] {
            let scan = find_divergence(&synthetic(4096), &mutated(4096, k), recover(k));
            match scan.divergence.expect("diverges") {
                Divergence::Cell { index, .. } => assert_eq!(index, k),
                Divergence::Length { .. } => panic!("not a length mismatch"),
            }
            assert!(
                scan.probes <= 14,
                "cell {k}: {} probes exceeds log bound",
                scan.probes
            );
        }
    }

    #[test]
    fn display_names_the_exact_coordinate() {
        let scan = find_divergence(&synthetic(8), &mutated(8, 3), recover(3));
        let rendered = scan.divergence.expect("diverges").to_string();
        assert!(
            rendered.contains("cell #3 (config 3, world 4, scenario 5, replicate 6)"),
            "{rendered}"
        );
        assert!(rendered.contains("expected: cell line 3"), "{rendered}");
        assert!(
            rendered.contains("observed: cell line 3 CORRUPTED"),
            "{rendered}"
        );
    }

    #[test]
    fn prefix_digests_are_chained_not_positional() {
        // Swapping two adjacent cells must change the digest at the first
        // swapped position even though the *set* of lines is unchanged.
        let a = CellStream::from_lines(["x", "y"]);
        let b = CellStream::from_lines(["y", "x"]);
        let scan = find_divergence(&a, &b, |i| {
            (
                (0, 0, 0, i),
                ["x", "y"][i].to_string(),
                ["y", "x"][i].to_string(),
            )
        });
        match scan.divergence.expect("diverges") {
            Divergence::Cell { index, .. } => assert_eq!(index, 0),
            Divergence::Length { .. } => panic!("not a length mismatch"),
        }
    }

    #[test]
    fn streams_are_digest_only() {
        // 100k cells cost 8 bytes of digest chain each, not their lines:
        // the struct holds exactly len+1 u64 digests and a hasher.
        let stream = synthetic(100_000);
        assert_eq!(stream.len(), 100_000);
        assert_eq!(std::mem::size_of_val(&stream.prefix_digest(0)), 8);
    }
}
