//! The `Fleet` scheduler: shard assignment over a host pool, per-host
//! attempt/health accounting with consecutive-failure quarantine and
//! re-admission, warm serving from the shared cell cache, fault injection
//! for tests, and divergence diagnosis of disagreeing shards.
//!
//! The scheduler is written entirely against
//! [`WorkerTransport`](crate::WorkerTransport), so the same supervision
//! loop drives local child processes and command-prefix (ssh-style)
//! fleets. Elasticity comes from the shared cache, not from the scheduler:
//! a host only ever executes cells nobody has computed yet, because fully
//! cached shards are served warm by the coordinator (file reads, no worker)
//! and workers themselves skip cached cells via `--cache-dir`.

use std::collections::BTreeSet;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use nvariant_campaign::{
    CacheStats, CampaignPlan, CampaignReport, CoordinateWalk, MergeError, ShardCursor, ShardMerger,
    StreamMergeError,
};

use crate::divergence::{find_divergence, CellStream, Divergence};
use crate::transport::{ShardAssignment, WorkerHandle, WorkerStatus, WorkerTransport};

/// Tuning and fault-injection knobs for one fleet run.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Number of shards the plan is split into (one worker per shard
    /// attempt).
    pub shards: usize,
    /// Per-shard attempt cap; a shard that exhausts it fails the run.
    pub attempts: usize,
    /// Per-attempt wall budget; a worker over budget is killed and the
    /// shard retried.
    pub timeout: Duration,
    /// A host is quarantined after this many *consecutive* failures; a
    /// success resets the count. Quarantined hosts receive no new work
    /// until re-admitted (which happens only when no healthy host
    /// remains).
    pub quarantine_after: usize,
    /// Fault injection: these shards' first attempts are killed right
    /// after spawn, exercising retry, host-failure accounting and (with a
    /// populated cache) warm recovery.
    pub kill_shards: BTreeSet<usize>,
    /// Fault injection: these shards' first retrieved files are corrupted
    /// in transit (one metrics counter bumped — the file stays parseable
    /// and the cell set intact, so only the divergence cross-check can
    /// catch it).
    pub corrupt_shards: BTreeSet<usize>,
    /// Supervision loop sleep between polls.
    pub poll_interval: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 3,
            attempts: 3,
            timeout: Duration::from_mins(10),
            quarantine_after: 2,
            kill_shards: BTreeSet::new(),
            corrupt_shards: BTreeSet::new(),
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// End-of-run health accounting for one host of the pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostStats {
    /// The host's name as configured in the pool.
    pub name: String,
    /// Worker attempts started on this host.
    pub attempts: usize,
    /// Attempts that produced a valid, collected shard.
    pub successes: usize,
    /// Attempts that failed (crash, timeout, unusable file).
    pub failures: usize,
    /// How many times the host entered quarantine.
    pub quarantines: usize,
    /// Whether the host ended the run quarantined.
    pub quarantined: bool,
}

impl fmt::Display for HostStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "host {}: {} attempt(s), {} succeeded, {} failed, {} quarantine(s), {}",
            self.name,
            self.attempts,
            self.successes,
            self.failures,
            self.quarantines,
            if self.quarantined {
                "quarantined at end of run"
            } else {
                "healthy at end of run"
            }
        )
    }
}

/// Why a fleet run failed. The three variants map to `campaignd`'s three
/// distinct failure exit codes.
#[derive(Debug)]
pub enum FleetError {
    /// A shard used up its attempt cap without producing a valid shard
    /// file.
    Exhausted {
        /// The exhausted shard.
        shard: usize,
        /// The attempt cap it hit.
        attempts: usize,
        /// Why each attempt failed, in order.
        failures: Vec<String>,
    },
    /// Every shard was collected but the final merge rejected the set
    /// (possible only for foreign or tampered inputs — the per-shard
    /// validation makes it structurally unlikely).
    Merge(MergeError),
    /// A retrieved shard is a *valid* report that disagrees with the
    /// authoritative result (shared cache or verification re-run): a data
    /// integrity failure, never retried.
    Divergence {
        /// The shard whose retrieved report diverged, if the disagreement
        /// was found during collection (`None` for whole-report checks).
        shard: Option<usize>,
        /// What the report disagreed with ("shared cell cache",
        /// "verification re-run").
        against: String,
        /// The first disagreement, with exact matrix coordinates (boxed to
        /// keep the `Err` variant small — the happy path returns `Ok`).
        divergence: Box<Divergence>,
        /// Prefix-digest probes the finder spent — O(log cells).
        probes: usize,
        /// Cells in the compared streams.
        cells: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Exhausted {
                shard,
                attempts,
                failures,
            } => write!(
                f,
                "shard {shard}: exhausted {attempts} attempt(s): {}",
                failures.join("; ")
            ),
            FleetError::Merge(error) => write!(f, "merge failed: {error}"),
            FleetError::Divergence {
                shard,
                against,
                divergence,
                probes,
                cells,
            } => {
                match shard {
                    Some(index) => write!(f, "shard {index}: ")?,
                    None => write!(f, "merged report: ")?,
                }
                writeln!(
                    f,
                    "retrieved result diverges from {against} (located in {probes} \
                     prefix-digest probes over {cells} cells):"
                )?;
                write!(f, "{divergence}")
            }
        }
    }
}

impl std::error::Error for FleetError {}

/// What a successful fleet run produced.
#[derive(Debug)]
pub struct FleetRun {
    /// The merged, validated campaign report.
    pub report: CampaignReport,
    /// Per-host health accounting, in pool order.
    pub hosts: Vec<HostStats>,
    /// Shards the coordinator served warm from the cell cache (no worker
    /// spawned).
    pub warm_shards: usize,
    /// Cells those warm shards covered.
    pub warm_cells: usize,
    /// Total retries across all shards.
    pub retries: usize,
}

impl FleetRun {
    /// The per-host stats block the coordinator prints at end of run.
    #[must_use]
    pub fn render_host_summary(&self) -> String {
        let mut out = String::from("per-host stats:\n");
        for host in &self.hosts {
            out.push_str(&format!("  {host}\n"));
        }
        out
    }
}

/// Deterministic in-transit corruption for fault injection: bumps the last
/// counter of the first `metrics` line, leaving the file parseable and the
/// cell coordinate set intact — so every structural validation passes and
/// only the divergence cross-check can catch it.
#[must_use]
pub fn corrupt_shard_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 4);
    let mut done = false;
    for line in text.lines() {
        if !done && line.starts_with("metrics ") {
            if let Some((head, last)) = line.rsplit_once(' ') {
                if let Ok(value) = last.parse::<u64>() {
                    out.push_str(&format!("{head} {}\n", value + 1));
                    done = true;
                    continue;
                }
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Mutable health state for one host of the pool.
struct HostState {
    stats: HostStats,
    /// Failures since the last success; quarantine triggers on this.
    consecutive_failures: usize,
    /// Attempts currently running on this host.
    running: usize,
    /// When the host was quarantined (monotone counter), for
    /// oldest-first re-admission.
    quarantined_at: usize,
}

struct HostPool {
    states: Vec<HostState>,
    quarantine_after: usize,
    quarantine_seq: usize,
}

impl HostPool {
    fn new(names: &[String], quarantine_after: usize) -> Self {
        HostPool {
            states: names
                .iter()
                .map(|name| HostState {
                    stats: HostStats {
                        name: name.clone(),
                        attempts: 0,
                        successes: 0,
                        failures: 0,
                        quarantines: 0,
                        quarantined: false,
                    },
                    consecutive_failures: 0,
                    running: 0,
                    quarantined_at: 0,
                })
                .collect(),
            quarantine_after: quarantine_after.max(1),
            quarantine_seq: 0,
        }
    }

    fn name(&self, host: usize) -> &str {
        &self.states[host].stats.name
    }

    /// The healthy host with the fewest running attempts (ties broken by
    /// pool order). When every host is quarantined, the oldest-quarantined
    /// one is re-admitted — the pool never deadlocks; a host that failed
    /// its way out gets another chance only when nobody else is left.
    fn pick(&mut self, progress: &dyn Fn(&str)) -> usize {
        let healthy = self
            .states
            .iter()
            .enumerate()
            .filter(|(_, state)| !state.stats.quarantined)
            .min_by_key(|(index, state)| (state.running, *index))
            .map(|(index, _)| index);
        if let Some(index) = healthy {
            return index;
        }
        let oldest = self
            .states
            .iter()
            .enumerate()
            .min_by_key(|(index, state)| (state.quarantined_at, *index))
            .map_or(0, |(index, _)| index);
        let state = &mut self.states[oldest];
        state.stats.quarantined = false;
        state.consecutive_failures = 0;
        progress(&format!(
            "host {}: re-admitted from quarantine (no healthy hosts remain)",
            state.stats.name
        ));
        oldest
    }

    fn attempt_started(&mut self, host: usize) {
        self.states[host].stats.attempts += 1;
        self.states[host].running += 1;
    }

    fn attempt_finished(&mut self, host: usize, success: bool, progress: &dyn Fn(&str)) {
        let quarantine_after = self.quarantine_after;
        let state = &mut self.states[host];
        state.running = state.running.saturating_sub(1);
        if success {
            state.stats.successes += 1;
            state.consecutive_failures = 0;
            return;
        }
        state.stats.failures += 1;
        state.consecutive_failures += 1;
        if state.consecutive_failures >= quarantine_after && !state.stats.quarantined {
            state.stats.quarantined = true;
            state.stats.quarantines += 1;
            self.quarantine_seq += 1;
            state.quarantined_at = self.quarantine_seq;
            progress(&format!(
                "host {}: quarantined after {} consecutive failure(s)",
                state.stats.name, state.consecutive_failures
            ));
        }
    }

    fn into_stats(self) -> Vec<HostStats> {
        self.states.into_iter().map(|state| state.stats).collect()
    }
}

/// One running worker attempt.
struct RunningAttempt {
    handle: Box<dyn WorkerHandle>,
    host: usize,
    started: Instant,
}

/// A validated shard sitting on disk, ready for the streaming final merge.
struct CollectedShard {
    /// The validated spool file (shard interchange format).
    spool: PathBuf,
    /// Cells the shard covers (from the streaming validation walk).
    cells: usize,
    /// Cache counters to credit to the merged report (warm-served shards).
    cache: Option<CacheStats>,
}

/// The scheduler's bookkeeping for one shard of the plan.
struct ShardJob {
    index: usize,
    attempts_used: usize,
    running: Option<RunningAttempt>,
    collected: Option<CollectedShard>,
    failures: Vec<String>,
}

/// Why a retrieved shard was not collected: a retryable defect (counts
/// against the attempt cap) or an integrity failure that aborts the run.
enum CollectFailure {
    Retry(String),
    Abort(FleetError),
}

/// A campaign run over a host pool through a pluggable transport.
pub struct Fleet<'plan> {
    plan: &'plan CampaignPlan,
    transport: Box<dyn WorkerTransport>,
    hosts: Vec<String>,
    config: FleetConfig,
    worker_bin: PathBuf,
    worker_args: Vec<String>,
    scratch_dir: PathBuf,
    progress: Box<dyn Fn(&str)>,
}

impl<'plan> Fleet<'plan> {
    /// A fleet over `plan`, spawning `worker_bin` through `transport`,
    /// with shard files in `scratch_dir` (for transports that keep them
    /// coordinator-local). Defaults: one host named `local`, default
    /// [`FleetConfig`], no extra worker arguments, silent progress.
    #[must_use]
    pub fn new(
        plan: &'plan CampaignPlan,
        transport: Box<dyn WorkerTransport>,
        worker_bin: PathBuf,
        scratch_dir: PathBuf,
    ) -> Self {
        Fleet {
            plan,
            transport,
            hosts: vec!["local".to_string()],
            config: FleetConfig::default(),
            worker_bin,
            worker_args: Vec::new(),
            scratch_dir,
            progress: Box::new(|_| {}),
        }
    }

    /// Replaces the host pool (empty pools fall back to one `local` host).
    #[must_use]
    pub fn hosts(mut self, hosts: Vec<String>) -> Self {
        self.hosts = if hosts.is_empty() {
            vec!["local".to_string()]
        } else {
            hosts
        };
        self
    }

    /// Replaces the run configuration.
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self
    }

    /// Extra arguments forwarded to every worker before `--shard`/`--out`
    /// (quick mode, worker threads, cache flags).
    #[must_use]
    pub fn worker_args(mut self, args: Vec<String>) -> Self {
        self.worker_args = args;
        self
    }

    /// Registers a progress sink (the coordinator's stdout; tests collect
    /// the lines).
    #[must_use]
    pub fn on_progress(mut self, progress: impl Fn(&str) + 'static) -> Self {
        self.progress = Box::new(progress);
        self
    }

    /// Runs the campaign: assigns shards to hosts, supervises and retries
    /// workers, serves cached shards warm, and merges the validated shard
    /// reports.
    ///
    /// # Errors
    ///
    /// Returns a [`FleetError`] when a shard exhausts its attempts, the
    /// merge rejects the shard set, or a retrieved shard diverges from the
    /// shared cache.
    pub fn run(&self) -> Result<FleetRun, FleetError> {
        let shards = self.config.shards.max(1);
        let mut pool = HostPool::new(&self.hosts, self.config.quarantine_after);
        let mut warm_shards = 0_usize;
        let mut warm_cells = 0_usize;
        let mut jobs: Vec<ShardJob> = (0..shards)
            .map(|index| ShardJob {
                index,
                attempts_used: 0,
                running: None,
                collected: None,
                failures: Vec::new(),
            })
            .collect();
        for job in &mut jobs {
            self.start(job, &mut pool, &mut warm_shards, &mut warm_cells);
        }

        // The supervision loop: poll every running worker, respawn failed
        // shards while attempts remain, stop when every shard is collected
        // or some shard is exhausted. Divergence aborts immediately — it is
        // an integrity failure a retry cannot launder.
        loop {
            for job in &mut jobs {
                self.poll(job, &mut pool)?;
                if job.collected.is_none()
                    && job.running.is_none()
                    && job.attempts_used < self.config.attempts
                {
                    (self.progress)(&format!(
                        "shard {}: retrying (attempt {}): {}",
                        job.index,
                        job.attempts_used + 1,
                        job.failures.last().map_or("unknown failure", |f| f)
                    ));
                    self.start(job, &mut pool, &mut warm_shards, &mut warm_cells);
                }
            }
            if let Some(job) = jobs.iter().find(|job| {
                job.collected.is_none()
                    && job.running.is_none()
                    && job.attempts_used >= self.config.attempts
            }) {
                return Err(FleetError::Exhausted {
                    shard: job.index,
                    attempts: self.config.attempts,
                    failures: job.failures.clone(),
                });
            }
            if jobs.iter().all(|job| job.collected.is_some()) {
                break;
            }
            std::thread::sleep(self.config.poll_interval);
        }

        let retries = jobs.iter().map(|job| job.attempts_used - 1).sum();
        let collected: Vec<CollectedShard> = jobs
            .into_iter()
            .map(|job| {
                job.collected
                    .expect("loop exits only when every shard is collected")
            })
            .collect();
        let cache = collected.iter().fold(None::<CacheStats>, |merged, shard| {
            match (merged, shard.cache) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or_default().merged(b.unwrap_or_default())),
            }
        });
        // The final merge streams: a k-way merge over the validated spool
        // files holds one buffered cell per shard while re-validating
        // coverage, duplicates and plan identity.
        let mut cursors = Vec::with_capacity(collected.len());
        for (index, shard) in collected.iter().enumerate() {
            match ShardCursor::open(&shard.spool) {
                Ok(cursor) => cursors.push(cursor),
                Err(error) => {
                    return Err(Self::merge_error(StreamMergeError::Shard {
                        shard: index,
                        error,
                    }))
                }
            }
        }
        let mut merger = match ShardMerger::new(cursors) {
            Ok(merger) => merger,
            Err(error) => return Err(Self::merge_error(error)),
        };
        let mut cells = Vec::with_capacity(collected.iter().map(|s| s.cells).sum());
        loop {
            match merger.next_cell() {
                Ok(Some(cell)) => cells.push(cell),
                Ok(None) => break,
                Err(error) => return Err(Self::merge_error(error)),
            }
        }
        let header = merger.header();
        let mut report = CampaignReport::new(
            header.name.clone(),
            header.base_seed,
            header.plan_hash,
            header.shape,
            header.workers,
            cells,
            header.total_wall,
        );
        report.cache = cache;
        Ok(FleetRun {
            report,
            hosts: pool.into_stats(),
            warm_shards,
            warm_cells,
            retries,
        })
    }

    /// Maps a streaming-merge failure onto the fleet's error surface: merge
    /// validation failures keep their [`MergeError`], and a spool file that
    /// stopped parsing (it validated at collection time, so this means
    /// on-disk corruption between collection and merge) is reported as that
    /// shard's failure.
    fn merge_error(error: StreamMergeError) -> FleetError {
        match error {
            StreamMergeError::Merge(error) => FleetError::Merge(error),
            StreamMergeError::Shard { shard, error } => FleetError::Exhausted {
                shard,
                attempts: 1,
                failures: vec![format!("final merge: spooled shard file: {error}")],
            },
        }
    }

    /// Starts (or restarts) a shard: served warm from the cell cache when
    /// every one of its cells is already there, otherwise as a worker on
    /// the least-loaded healthy host. Fault injections target the first
    /// attempt, which is therefore never served warm — the injection
    /// always fires, and the *retry* demonstrates recovery.
    fn start(
        &self,
        job: &mut ShardJob,
        pool: &mut HostPool,
        warm_shards: &mut usize,
        warm_cells: &mut usize,
    ) {
        let fault_injected = job.attempts_used == 0
            && (self.config.kill_shards.contains(&job.index)
                || self.config.corrupt_shards.contains(&job.index));
        if !fault_injected {
            if let Some(report) = self.plan.cached_shard_report(job.index, self.config.shards) {
                job.attempts_used += 1;
                (self.progress)(&format!(
                    "shard {}: served warm from cache ({} cells as file reads, attempt {})",
                    job.index,
                    report.cells.len(),
                    job.attempts_used
                ));
                // Warm shards join the streaming final merge like any other
                // shard: spooled to disk and dropped. The cache counters
                // ride alongside (the shard codec doesn't carry them).
                let spool = self.spool_path(job.index);
                let cells = report.cells.len();
                let cache = report.cache;
                match std::fs::write(&spool, report.to_shard_text()) {
                    Ok(()) => {
                        *warm_shards += 1;
                        *warm_cells += cells;
                        job.collected = Some(CollectedShard {
                            spool,
                            cells,
                            cache,
                        });
                    }
                    Err(error) => {
                        // A broken scratch dir degrades warm serving to a
                        // retryable failure, never to aborting the run here.
                        job.failures.push(format!(
                            "attempt {}: cannot spool warm shard: {error}",
                            job.attempts_used
                        ));
                    }
                }
                return;
            }
        }

        let host = pool.pick(self.progress.as_ref());
        let assignment = ShardAssignment {
            index: job.index,
            count: self.config.shards,
            worker_bin: self.worker_bin.clone(),
            worker_args: self.worker_args.clone(),
            scratch_dir: self.scratch_dir.clone(),
        };
        job.attempts_used += 1;
        pool.attempt_started(host);
        match self.transport.spawn(pool.name(host), &assignment) {
            Ok(mut handle) => {
                // Fault injection: kill the first attempt of the chosen
                // shard before it can write its report, so the retry path
                // (and the host's failure accounting) runs under test
                // instead of only in production incidents.
                if self.config.kill_shards.contains(&job.index) && job.attempts_used == 1 {
                    handle.kill();
                    (self.progress)(&format!(
                        "shard {}: attempt 1 killed by --kill-shard fault injection on host {}",
                        job.index,
                        pool.name(host)
                    ));
                }
                job.running = Some(RunningAttempt {
                    handle,
                    host,
                    started: Instant::now(),
                });
            }
            Err(error) => {
                job.failures.push(format!(
                    "attempt {}: spawn on host {} failed: {error}",
                    job.attempts_used,
                    pool.name(host)
                ));
                pool.attempt_finished(host, false, self.progress.as_ref());
                job.running = None;
            }
        }
    }

    /// Polls a running attempt: records a collected report, a failure to
    /// retry, or a timeout kill; does nothing while the worker is still
    /// healthy and within budget. A valid report that disagrees with the
    /// shared cache aborts the run with [`FleetError::Divergence`].
    fn poll(&self, job: &mut ShardJob, pool: &mut HostPool) -> Result<(), FleetError> {
        let Some(attempt) = job.running.as_mut() else {
            return Ok(());
        };
        match attempt.handle.poll() {
            WorkerStatus::Running => {
                if attempt.started.elapsed() > self.config.timeout {
                    attempt.handle.kill();
                    let host = attempt.host;
                    job.running = None;
                    job.failures.push(format!(
                        "attempt {}: timed out after {:?} and was killed (host {})",
                        job.attempts_used,
                        self.config.timeout,
                        pool.name(host)
                    ));
                    pool.attempt_finished(host, false, self.progress.as_ref());
                }
                Ok(())
            }
            WorkerStatus::Exited {
                success: false,
                detail,
            } => {
                let host = attempt.host;
                job.running = None;
                job.failures.push(format!(
                    "attempt {}: worker exited with {detail} (host {})",
                    job.attempts_used,
                    pool.name(host)
                ));
                pool.attempt_finished(host, false, self.progress.as_ref());
                Ok(())
            }
            WorkerStatus::Exited { success: true, .. } => {
                let host = attempt.host;
                let spooled = self.spool(job.index, job.attempts_used, attempt.handle.as_mut());
                job.running = None;
                let collected = spooled.and_then(|spool| {
                    self.validate_streamed(job.index, &spool)
                        .map(|cells| CollectedShard {
                            spool,
                            cells,
                            cache: None,
                        })
                });
                match collected {
                    Ok(shard) => {
                        pool.attempt_finished(host, true, self.progress.as_ref());
                        (self.progress)(&format!(
                            "shard {}: collected {} cells (attempt {}) via host {}",
                            job.index,
                            shard.cells,
                            job.attempts_used,
                            pool.name(host)
                        ));
                        job.collected = Some(shard);
                    }
                    Err(CollectFailure::Retry(reason)) => {
                        job.failures
                            .push(format!("attempt {}: {reason}", job.attempts_used));
                        pool.attempt_finished(host, false, self.progress.as_ref());
                    }
                    Err(CollectFailure::Abort(error)) => {
                        // An integrity failure still counts as this host's
                        // completed (successful) attempt: the worker and
                        // transport did their job; the *data* disagrees.
                        pool.attempt_finished(host, true, self.progress.as_ref());
                        return Err(error);
                    }
                }
                Ok(())
            }
        }
    }

    /// The spool file a shard's validated interchange text lives in between
    /// collection and the streaming final merge.
    fn spool_path(&self, shard: usize) -> PathBuf {
        self.scratch_dir
            .join(format!("spool-shard-{shard}-of-{}.txt", self.config.shards))
    }

    /// Streams the worker's shard file to the shard's spool path —
    /// `io::copy` from the transport's reader, never the whole file in
    /// memory. The in-transit corruption injection (test-only) takes the
    /// buffered path, since it must rewrite a line.
    fn spool(
        &self,
        shard: usize,
        attempts_used: usize,
        handle: &mut dyn WorkerHandle,
    ) -> Result<PathBuf, CollectFailure> {
        let spool = self.spool_path(shard);
        let corrupt = self.config.corrupt_shards.contains(&shard) && attempts_used == 1;
        let retry = |message: String| CollectFailure::Retry(message);
        if corrupt {
            (self.progress)(&format!(
                "shard {shard}: attempt 1 corrupted in transit by --corrupt-shard fault injection"
            ));
            let text = handle
                .retrieve()
                .map_err(|error| retry(format!("shard file retrieval failed: {error}")))?;
            std::fs::write(&spool, corrupt_shard_text(&text))
                .map_err(|error| retry(format!("cannot spool shard file: {error}")))?;
            return Ok(spool);
        }
        let mut reader = handle
            .retrieve_stream()
            .map_err(|error| retry(format!("shard file retrieval failed: {error}")))?;
        let file = std::fs::File::create(&spool)
            .map_err(|error| retry(format!("cannot spool shard file: {error}")))?;
        let mut writer = std::io::BufWriter::new(file);
        std::io::copy(&mut reader, &mut writer)
            .and_then(|_| writer.flush())
            .map_err(|error| retry(format!("shard file retrieval failed: {error}")))?;
        Ok(spool)
    }

    /// Validates a spooled shard file by streaming it — header gates, then
    /// a one-cell-at-a-time walk against the shard's expected round-robin
    /// coordinate slice, with the shared-cache cross-check folded into the
    /// same pass (digest-only streams; no cell is retained). Any retryable
    /// failure (truncated/corrupt file, foreign plan hash, wrong cell set)
    /// counts against the shard's attempt cap exactly like a crash; a
    /// cache disagreement is a data integrity failure (a host computed —
    /// or the transport delivered — a *different result for the same
    /// deterministic cell*) that aborts the run, diagnosed by the
    /// logarithmic divergence finder to its exact first coordinate.
    ///
    /// Returns the number of cells the shard covers.
    fn validate_streamed(&self, shard: usize, spool: &Path) -> Result<usize, CollectFailure> {
        let retry = |message: String| CollectFailure::Retry(message);
        let parse_failed = |error: &dyn fmt::Display| retry(format!("shard file: {error}"));
        let mut cursor = ShardCursor::open(spool).map_err(|e| parse_failed(&e))?;
        if cursor.header().plan_hash != self.plan.plan_hash() {
            return Err(retry(format!(
                "shard plan hash {:#018x} does not match coordinator plan {:#018x}",
                cursor.header().plan_hash,
                self.plan.plan_hash()
            )));
        }
        // A corrupt or tampered shape header is an unusable file like any
        // other: count it against the attempt cap here instead of letting
        // it abort the whole campaign at the final merge.
        if cursor.header().shape != self.plan.shape() {
            return Err(retry(format!(
                "shard declares matrix shape {} but the coordinator plan is {}",
                cursor.header().shape,
                self.plan.shape()
            )));
        }
        let total = self.plan.shape().cell_count();
        let expected_total = if shard < total {
            (total - shard).div_ceil(self.config.shards)
        } else {
            0
        };
        let mut expected_walk = CoordinateWalk::new(self.plan.shape())
            .skip(shard)
            .step_by(self.config.shards.max(1));
        let cache = self.plan.cell_cache();
        let mut expected_stream = CellStream::new();
        let mut observed_stream = CellStream::new();
        let mut got = 0_usize;
        let mut set_mismatch = false;
        let mut first_diff = String::new();
        while let Some(cell) = cursor.next_cell().map_err(|e| parse_failed(&e))? {
            got += 1;
            match expected_walk.next() {
                Some(expected) if expected == cell.spec.coordinates() => {
                    if let Some(cache) = &cache {
                        if let Some(cached) = cache.lookup(&cell.spec) {
                            expected_stream.push(&cached.canonical_line());
                            observed_stream.push(&cell.canonical_line());
                        }
                    }
                }
                Some(expected) => {
                    if !set_mismatch {
                        first_diff = format!(
                            "; first divergence: expected {expected:?}, got {:?}",
                            cell.spec.coordinates()
                        );
                    }
                    set_mismatch = true;
                }
                None => set_mismatch = true,
            }
        }
        if set_mismatch || got != expected_total {
            return Err(retry(format!(
                "shard cell set mismatch: expected {expected_total} cells, got {got}{first_diff}"
            )));
        }
        let cells_compared = expected_stream.len();
        let scan = find_divergence(&expected_stream, &observed_stream, |index| {
            self.recover_cache_pair(spool, index)
        });
        if let Some(divergence) = scan.divergence {
            return Err(CollectFailure::Abort(FleetError::Divergence {
                shard: Some(shard),
                against: "shared cell cache".to_string(),
                divergence: Box::new(divergence),
                probes: scan.probes,
                cells: cells_compared,
            }));
        }
        Ok(got)
    }

    /// Recovers the evidence for the `target`-th cache-checked cell of a
    /// spooled shard (the divergence finder's `cell_at` callback): a second
    /// streaming pass over the spool, re-querying the cache, materializing
    /// exactly the one disagreeing pair.
    fn recover_cache_pair(
        &self,
        spool: &Path,
        target: usize,
    ) -> ((usize, usize, usize, usize), String, String) {
        if let (Some(cache), Ok(mut cursor)) = (self.plan.cell_cache(), ShardCursor::open(spool)) {
            let mut checked = 0_usize;
            while let Ok(Some(cell)) = cursor.next_cell() {
                if let Some(cached) = cache.lookup(&cell.spec) {
                    if checked == target {
                        return (
                            cached.spec.coordinates(),
                            cached.canonical_line(),
                            cell.canonical_line(),
                        );
                    }
                    checked += 1;
                }
            }
        }
        // The spool or cache changed between the scan and the recovery
        // pass; the coordinate is still exact, the lines are best-effort.
        (
            (0, 0, 0, 0),
            "<unrecoverable>".to_string(),
            "<unrecoverable>".to_string(),
        )
    }
}

/// Compares two whole reports with the divergence finder (`campaignd`'s
/// `--verify-rerun` path): `None` when canonical cell streams agree,
/// otherwise the located first disagreement as a ready-made
/// [`FleetError::Divergence`].
#[must_use]
pub fn verify_reports(
    expected: &CampaignReport,
    observed: &CampaignReport,
    against: &str,
) -> Option<FleetError> {
    let expected_stream = CellStream::from_report(expected);
    let observed_stream = CellStream::from_report(observed);
    let cells = expected_stream.len();
    let scan = find_divergence(&expected_stream, &observed_stream, |index| {
        let expected_cell = &expected.cells[index];
        let observed_cell = &observed.cells[index];
        (
            expected_cell.spec.coordinates(),
            expected_cell.canonical_line(),
            observed_cell.canonical_line(),
        )
    });
    scan.divergence.map(|divergence| FleetError::Divergence {
        shard: None,
        against: against.to_string(),
        divergence: Box::new(divergence),
        probes: scan.probes,
        cells,
    })
}
