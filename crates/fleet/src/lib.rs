//! `nvariant_fleet` — multi-host campaign execution over pluggable worker
//! transports.
//!
//! The campaign crate made sharded runs *provably* recomposable: cells are
//! deterministic, shards are pure functions of the plan, and the plan-hash
//! gate plus matrix validation make a wrong-but-plausible merge
//! structurally impossible. This crate turns that proof into distribution
//! infrastructure:
//!
//! * [`WorkerTransport`] / [`WorkerHandle`] — how a coordinator starts a
//!   shard worker *somewhere*, watches it, kills it, and retrieves the
//!   shard file it produced. [`LocalProcessTransport`] is the classic
//!   single-host child-process path; [`CommandTransport`] runs workers
//!   through an arbitrary command prefix (`ssh {host}`, or the hermetic
//!   fake-remote wrapper CI uses), retrieving files *through the prefix*
//!   so nothing assumes a shared filesystem.
//! * [`Fleet`] — the scheduler: assigns shards to a host pool
//!   (least-loaded healthy host), keeps per-host attempt/health accounting
//!   with consecutive-failure quarantine and oldest-first re-admission,
//!   serves fully cached shards warm from the shared cell cache (hosts are
//!   *elastic*: they only execute cells nobody has computed yet), and
//!   retries crashed, hung, or unusable attempts up to a cap.
//! * [`find_divergence`] — when a retrieved shard *is* valid but disagrees
//!   with the authoritative result (shared cache, or a verification
//!   re-run), a logarithmic divergence finder over the canonical per-cell
//!   stream reports the exact first differing coordinate
//!   (config × world × scenario × replicate) and both rendered cells, in
//!   O(log cells) prefix-digest probes instead of a whole-report byte
//!   diff.
//!
//! `campaignd` is a thin CLI over this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod divergence;
pub mod fleet;
pub mod transport;

pub use divergence::{find_divergence, CellStream, Coordinates, Divergence, DivergenceScan};
pub use fleet::{
    corrupt_shard_text, verify_reports, Fleet, FleetConfig, FleetError, FleetRun, HostStats,
};
pub use transport::{
    local_shard_path, CommandTransport, LocalProcessTransport, ShardAssignment, TransportError,
    WorkerHandle, WorkerStatus, WorkerTransport,
};
