//! The experiment plan: a matrix of (configuration × world × scenario ×
//! replicate) cells over build-once [`CompiledSystem`] artifacts and named
//! [`WorldTemplate`]s, enumerable as a pure cell list, shardable across
//! processes, and executable on a scoped worker pool.

use crate::cache::CellCache;
use crate::cell::{CellOutcome, CellResult, CellSpec, CellVerdict, CheckSummary};
use crate::engine::{cell_seed, run_parallel};
use crate::exchange::ServedRequest;
use crate::report::{CampaignReport, PlanShape};
use nvariant::{CompiledSystem, DeploymentConfig, RunnableSystem, SystemOutcome};
use nvariant_simos::{OsKernel, WorldTemplate};
use nvariant_types::{fnv1a_64, Port};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What a scenario's judge sees: the terminated system plus the served
/// request/response pairs of one cell.
#[derive(Clone, Copy, Debug)]
pub struct CellRun<'a> {
    /// How the deployed system terminated.
    pub outcome: &'a SystemOutcome,
    /// The request/response pairs, in arrival order.
    pub exchanges: &'a [ServedRequest],
}

/// Stages `requests` on `port`, runs `system` to completion and pairs each
/// observed connection with its response. The one canonical
/// stage-run-collect sequence: campaign cells and direct scenario runners
/// share it, so what a cell reports and what a hand-driven system reports
/// cannot drift apart.
pub fn serve_requests(
    system: &mut RunnableSystem,
    port: Port,
    requests: &[Vec<u8>],
) -> (SystemOutcome, Vec<ServedRequest>) {
    for request in requests {
        system
            .kernel_mut()
            .net_mut()
            .preload_request(port, request.clone());
    }
    let outcome = system.run();
    let exchanges = system
        .kernel()
        .net()
        .connections()
        .map(|conn| ServedRequest {
            request: conn.request.clone(),
            response: conn.response.clone(),
        })
        .collect();
    (outcome, exchanges)
}

type RequestFn = dyn Fn(&RunnableSystem, u64) -> Vec<Vec<u8>> + Send + Sync;
type JudgeFn = dyn Fn(&DeploymentConfig, CellRun<'_>) -> CellVerdict + Send + Sync;
type CheckFn = dyn Fn(&Arc<CompiledSystem>, Option<&WorldTemplate>, &CellSpec) -> Option<CheckSummary>
    + Send
    + Sync;

/// One scenario of a plan: a labelled request generator plus an optional
/// judge that classifies what each cell achieved.
///
/// The generator receives the freshly instantiated system (so payloads may
/// inspect symbol addresses, exactly like a real attacker with a leaked
/// binary) and the cell's deterministic seed.
#[derive(Clone)]
pub struct Scenario {
    label: String,
    port: Port,
    requests: Arc<RequestFn>,
    judge: Option<Arc<JudgeFn>>,
    check: Option<Arc<CheckFn>>,
}

impl Scenario {
    /// Creates a scenario from a request generator.
    pub fn new(
        label: impl Into<String>,
        requests: impl Fn(&RunnableSystem, u64) -> Vec<Vec<u8>> + Send + Sync + 'static,
    ) -> Self {
        Scenario {
            label: label.into(),
            port: Port::HTTP,
            requests: Arc::new(requests),
            judge: None,
            check: None,
        }
    }

    /// Creates a scenario that always stages the same fixed request batch.
    pub fn fixed_requests(label: impl Into<String>, requests: Vec<Vec<u8>>) -> Self {
        Scenario::new(label, move |_, _| requests.clone())
    }

    /// Stages requests on `port` instead of the default HTTP port.
    #[must_use]
    pub fn on_port(mut self, port: Port) -> Self {
        self.port = port;
        self
    }

    /// Attaches a judge that classifies each cell (observed vs. expected).
    #[must_use]
    pub fn with_judge(
        mut self,
        judge: impl Fn(&DeploymentConfig, CellRun<'_>) -> CellVerdict + Send + Sync + 'static,
    ) -> Self {
        self.judge = Some(Arc::new(judge));
        self
    }

    /// Attaches a static check hook: per cell it receives the compiled
    /// artifact, the cell's world template (when the plan has explicit
    /// worlds) and the cell spec, and returns a summary of a model-checking
    /// pass to attach to the cell. The campaign crate does not know *how*
    /// the check runs — callers typically close over
    /// `nvariant_check::BoundedChecker`.
    #[must_use]
    pub fn with_check(
        mut self,
        check: impl Fn(&Arc<CompiledSystem>, Option<&WorldTemplate>, &CellSpec) -> Option<CheckSummary>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        self.check = Some(Arc::new(check));
        self
    }

    /// The scenario's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("label", &self.label)
            .field("port", &self.port)
            .field("judged", &self.judge.is_some())
            .field("checked", &self.check.is_some())
            // The generator/judge/check closures have no useful rendering;
            // the three flags above say everything the closures would.
            .finish_non_exhaustive()
    }
}

/// An experiment plan: every configuration × every world × every scenario ×
/// `replicates` cells, each with a deterministic seed.
///
/// The plan is the *description* of an experiment, fully decoupled from its
/// execution:
///
/// * [`cells`](Self::cells) is a pure function of the plan — the same plan
///   always enumerates the same cells with the same seeds, in canonical
///   config-major order;
/// * [`shard`](Self::shard) splits that list round-robin so independent
///   workers (threads, processes, machines) each run a disjoint subset;
/// * [`run`](Self::run) / [`run_shard`](Self::run_shard) execute cells on a
///   scoped worker pool, and
///   [`CampaignReport::merge`](crate::CampaignReport::merge) reassembles
///   shard reports into the exact report an unsharded run produces.
///
/// Configurations enter as [`CompiledSystem`] artifacts, so the expensive
/// parse/transform/compile/provision pipeline runs **once per
/// configuration** no matter how many cells the matrix has. Worlds enter as
/// named [`WorldTemplate`]s; each (configuration, world) pair is provisioned
/// once per run ([`CompiledSystem::provision_world`]) and every cell only
/// pays [`CompiledSystem::instantiate_in`]. A plan with no explicit worlds
/// has a single implicit `"template"` world: the artifact's own
/// compile-time kernel template.
#[derive(Clone, Debug)]
pub struct CampaignPlan {
    name: String,
    configs: Vec<Arc<CompiledSystem>>,
    worlds: Vec<WorldTemplate>,
    scenarios: Vec<Scenario>,
    replicates: usize,
    base_seed: u64,
    cache_root: Option<PathBuf>,
}

impl CampaignPlan {
    /// Starts an empty plan.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CampaignPlan {
            name: name.into(),
            configs: Vec::new(),
            worlds: Vec::new(),
            scenarios: Vec::new(),
            replicates: 1,
            base_seed: 0x5EED,
            cache_root: None,
        }
    }

    /// Adds a compiled configuration to the matrix.
    #[must_use]
    pub fn config(mut self, compiled: impl Into<Arc<CompiledSystem>>) -> Self {
        self.configs.push(compiled.into());
        self
    }

    /// Adds every artifact in `compiled` to the matrix.
    #[must_use]
    pub fn configs(mut self, compiled: impl IntoIterator<Item = Arc<CompiledSystem>>) -> Self {
        self.configs.extend(compiled);
        self
    }

    /// Adds a world template to the matrix's environment axis.
    #[must_use]
    pub fn world(mut self, world: WorldTemplate) -> Self {
        self.worlds.push(world);
        self
    }

    /// Adds every template in `worlds` to the environment axis.
    #[must_use]
    pub fn worlds(mut self, worlds: impl IntoIterator<Item = WorldTemplate>) -> Self {
        self.worlds.extend(worlds);
        self
    }

    /// Adds a scenario to the matrix.
    #[must_use]
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Sets how many replicates of each (config, world, scenario) triple run
    /// (default 1; each replicate gets a distinct deterministic seed).
    #[must_use]
    pub fn replicates(mut self, replicates: usize) -> Self {
        self.replicates = replicates.max(1);
        self
    }

    /// Sets the plan's base seed (default `0x5EED`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Memoizes completed cells under `root` (the shared cache directory;
    /// cell entries live in `<root>/cells/<plan_hash>/`): every executed
    /// cell is persisted, and later runs of an identical plan — in this
    /// process or another — read it back instead of re-running. Corrupt or
    /// mismatched entries are recomputed, never surfaced as errors, and the
    /// per-run [`CacheStats`](nvariant::CacheStats) appear on the report.
    ///
    /// Caching never changes a report's deterministic content: a cache hit
    /// is the byte-identical cell the cold run serialized. The cache
    /// directory is *not* part of the plan's identity
    /// ([`descriptor`](Self::descriptor) / [`plan_hash`](Self::plan_hash)).
    #[must_use]
    pub fn with_cache_dir(mut self, root: impl Into<PathBuf>) -> Self {
        self.cache_root = Some(root.into());
        self
    }

    /// The cell-cache root directory, when caching is enabled.
    #[must_use]
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_root.as_deref()
    }

    /// The plan's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The plan's base seed.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The compiled configurations in the matrix.
    #[must_use]
    pub fn compiled_configs(&self) -> &[Arc<CompiledSystem>] {
        &self.configs
    }

    /// The explicit world templates in the matrix (empty when every cell
    /// runs in its artifact's own compile-time template).
    #[must_use]
    pub fn world_templates(&self) -> &[WorldTemplate] {
        &self.worlds
    }

    /// Number of worlds on the environment axis (1 for the implicit
    /// template world).
    #[must_use]
    pub fn world_count(&self) -> usize {
        self.worlds.len().max(1)
    }

    /// The per-configuration labels cells carry, disambiguated by matrix
    /// position: when two configurations render the same label (possible
    /// with `Custom` configurations), later occurrences get a `#<n>`
    /// suffix, so a label always identifies exactly one `config_index`.
    #[must_use]
    pub fn config_labels(&self) -> Vec<String> {
        disambiguate_labels(
            self.configs
                .iter()
                .map(|compiled| compiled.config().label()),
        )
    }

    /// The per-world labels cells carry (`["template"]` when the plan has
    /// no explicit worlds), disambiguated by matrix position exactly like
    /// [`config_labels`](Self::config_labels): two templates sharing a name
    /// (e.g. two tweaked variants of an environment) get `name` and
    /// `name#1`, so label-keyed lookups never conflate matrix positions.
    #[must_use]
    pub fn world_labels(&self) -> Vec<String> {
        if self.worlds.is_empty() {
            vec!["template".to_string()]
        } else {
            disambiguate_labels(self.worlds.iter().map(|w| w.name().to_string()))
        }
    }

    /// The dimensions of the plan's cell matrix.
    #[must_use]
    pub fn shape(&self) -> PlanShape {
        PlanShape {
            configs: self.configs.len(),
            worlds: self.world_count(),
            scenarios: self.scenarios.len(),
            replicates: self.replicates,
        }
    }

    /// The canonical plan descriptor: a line-oriented rendering of
    /// everything that identifies the experiment — name, base seed, matrix
    /// shape, and the full contents of every axis (configuration labels
    /// plus deployment options, compile-time transformation counts and the
    /// compiled artifact's content
    /// [fingerprint](nvariant::CompiledSystem::fingerprint) — which covers
    /// the program source, so editing the program re-keys the plan; world
    /// template labels; scenario labels with port and judging mode).
    ///
    /// Two plans with equal descriptors enumerate the same cells with the
    /// same seeds and run them under the same deployments, so the
    /// descriptor (via [`plan_hash`](Self::plan_hash)) is what a
    /// coordinator uses to decide whether two shard reports belong to the
    /// same experiment. Scenario *behaviour* (the request-generator and
    /// judge closures) cannot be hashed; scenarios are identified by label,
    /// port and whether they judge — reusing a scenario label for different
    /// behaviour within one plan name is the caller's bug, just as it is in
    /// the rendered reports.
    #[must_use]
    pub fn descriptor(&self) -> String {
        let mut out = format!(
            "plan {:?}\nseed {:#018x}\nshape {}\n",
            self.name,
            self.base_seed,
            self.shape()
        );
        for (index, (compiled, label)) in self.configs.iter().zip(self.config_labels()).enumerate()
        {
            // The artifact fingerprint covers the program source and every
            // builder knob, so editing the program (or limits, monitor
            // config, ...) re-keys the plan even when the deployment options
            // and transform counters happen to be unchanged — without it,
            // cached cells computed from an older program would be served
            // as hits for the new one.
            out.push_str(&format!(
                "config {index} {label:?} deployment={:?} stats={:?} artifact={:#018x}\n",
                compiled.config(),
                compiled.transform_stats(),
                compiled.fingerprint()
            ));
        }
        for (index, label) in self.world_labels().iter().enumerate() {
            out.push_str(&format!("world {index} {label:?}\n"));
        }
        for (index, scenario) in self.scenarios.iter().enumerate() {
            out.push_str(&format!(
                "scenario {index} {:?} port={} judged={} checked={}\n",
                scenario.label,
                scenario.port.as_u16(),
                scenario.judge.is_some(),
                scenario.check.is_some()
            ));
        }
        out
    }

    /// The canonical plan hash: FNV-1a 64 over
    /// [`descriptor`](Self::descriptor). Deterministic across processes and
    /// machines, which is what lets a coordinator gate shard merges up
    /// front: a worker that rebuilt a differently-shaped plan (different
    /// configurations, worlds, scenarios or replicates) under the same name
    /// and seed produces a different hash and its shards are rejected
    /// before any aggregation happens.
    #[must_use]
    pub fn plan_hash(&self) -> u64 {
        fnv1a_64(self.descriptor().as_bytes())
    }

    /// The full cell list, in canonical order (config-major, then world,
    /// scenario, replicate).
    ///
    /// This is a pure function of the plan: no scheduling, no randomness,
    /// no I/O — which is what makes the list shardable across processes
    /// that never communicate.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let config_labels = self.config_labels();
        let world_labels = self.world_labels();
        let mut cells = Vec::with_capacity(
            self.configs.len() * world_labels.len() * self.scenarios.len() * self.replicates,
        );
        for (config_index, config_label) in config_labels.iter().enumerate() {
            for (world_index, world_label) in world_labels.iter().enumerate() {
                for (scenario_index, scenario) in self.scenarios.iter().enumerate() {
                    for replicate in 0..self.replicates {
                        cells.push(CellSpec {
                            config_index,
                            world_index,
                            scenario_index,
                            replicate,
                            config_label: config_label.clone(),
                            world_label: world_label.clone(),
                            scenario_label: scenario.label.clone(),
                            seed: cell_seed(
                                self.base_seed,
                                config_index,
                                world_index,
                                scenario_index,
                                replicate,
                            ),
                        });
                    }
                }
            }
        }
        cells
    }

    /// Shard `index` of `count`: the cells whose canonical position is
    /// congruent to `index` modulo `count`. Round-robin assignment keeps
    /// every shard's load representative of the whole matrix (contiguous
    /// slices would hand one shard all the expensive configurations).
    ///
    /// The union of `shard(0, n) .. shard(n-1, n)` is exactly
    /// [`cells`](Self::cells), with no overlap, so per-shard reports merge
    /// back into the unsharded report.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`.
    #[must_use]
    pub fn shard(&self, index: usize, count: usize) -> Vec<CellSpec> {
        assert!(count > 0, "shard count must be positive");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        self.cells()
            .into_iter()
            .skip(index)
            .step_by(count)
            .collect()
    }

    /// Provisions the world for one (configuration, world) pair: the
    /// artifact's own template for the implicit world, otherwise
    /// [`CompiledSystem::provision_world`] applied to the named template.
    fn provisioned_kernel(&self, config_index: usize, world_index: usize) -> OsKernel {
        let compiled = &self.configs[config_index];
        if self.worlds.is_empty() {
            compiled.kernel_template().clone()
        } else {
            compiled.provision_world(self.worlds[world_index].kernel())
        }
    }

    /// Executes every cell across `workers` threads and aggregates the
    /// results.
    #[must_use]
    pub fn run(&self, workers: usize) -> CampaignReport {
        self.run_cells(self.cells(), workers)
    }

    /// Executes shard `index` of `count` across `workers` threads (see
    /// [`shard`](Self::shard)); merge the per-shard reports with
    /// [`CampaignReport::merge`](crate::CampaignReport::merge).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`.
    #[must_use]
    pub fn run_shard(&self, index: usize, count: usize, workers: usize) -> CampaignReport {
        self.run_cells(self.shard(index, count), workers)
    }

    /// Executes an explicit cell list across `workers` threads.
    ///
    /// Each (configuration, world) pair appearing in `cells` is provisioned
    /// exactly once up front; every cell then only pays
    /// [`CompiledSystem::instantiate_in`]. Cell results come back in the
    /// order of `cells`, and each cell's behaviour depends only on its spec,
    /// so the report's deterministic content is identical at any worker
    /// count.
    #[must_use]
    pub fn run_cells(&self, cells: Vec<CellSpec>, workers: usize) -> CampaignReport {
        let started = Instant::now();
        let cache = self.cell_cache();
        // Provision only the (configuration, world) pairs that actually
        // have to execute: a fully cached shard provisions nothing.
        let pairs: BTreeSet<(usize, usize)> = cells
            .iter()
            .filter(|spec| match &cache {
                Some(cache) => !cache.entry_path(spec).is_file(),
                None => true,
            })
            .map(|spec| (spec.config_index, spec.world_index))
            .collect();
        let provisioned: BTreeMap<(usize, usize), OsKernel> = pairs
            .into_iter()
            .map(|(config_index, world_index)| {
                (
                    (config_index, world_index),
                    self.provisioned_kernel(config_index, world_index),
                )
            })
            .collect();
        // Cache entries can vanish or turn out corrupt between the
        // provisioning probe above and the lookup below; pairs provisioned
        // on demand for that case are memoized so a whole directory of
        // damaged entries still provisions each pair only about once
        // instead of once per cell.
        let fallback: Mutex<BTreeMap<(usize, usize), Arc<OsKernel>>> = Mutex::new(BTreeMap::new());
        let results = run_parallel(cells, workers, |_, spec| {
            if let Some(cache) = &cache {
                if let Some(hit) = cache.lookup(&spec) {
                    return hit;
                }
            }
            let pair = (spec.config_index, spec.world_index);
            let result = if let Some(world) = provisioned.get(&pair) {
                self.run_cell_in(spec, world)
            } else {
                // Double-checked so the expensive provisioning happens
                // outside the lock: racing workers may provision the
                // same pair twice (identical deterministic kernels, the
                // loser's is dropped), but no worker ever blocks behind
                // another pair's provisioning.
                let cached = fallback
                    .lock()
                    .expect("fallback provisioning map poisoned")
                    .get(&pair)
                    .cloned();
                let world = if let Some(world) = cached {
                    world
                } else {
                    let world = Arc::new(self.provisioned_kernel(pair.0, pair.1));
                    Arc::clone(
                        fallback
                            .lock()
                            .expect("fallback provisioning map poisoned")
                            .entry(pair)
                            .or_insert(world),
                    )
                };
                self.run_cell_in(spec, &world)
            };
            if let Some(cache) = &cache {
                cache.insert(&result);
            }
            result
        });
        let report = CampaignReport::new(
            self.name.clone(),
            self.base_seed,
            self.plan_hash(),
            self.shape(),
            workers.max(1),
            results,
            started.elapsed(),
        );
        match cache {
            Some(cache) => report.with_cache_stats(cache.stats()),
            None => report,
        }
    }

    /// The cell cache handle for this plan's identity, when a cache
    /// directory is configured.
    #[must_use]
    pub fn cell_cache(&self) -> Option<CellCache> {
        self.cache_root.as_ref().map(|root| {
            CellCache::open(
                root,
                self.name.clone(),
                self.base_seed,
                self.plan_hash(),
                self.shape(),
            )
        })
    }

    /// Assembles the report for shard `index` of `count` entirely from the
    /// cell cache, executing nothing. Returns `None` — without running any
    /// cell — unless caching is configured *and* every cell of the shard
    /// has a valid cache entry. This is what lets a coordinator serve a
    /// retried shard as file reads instead of a worker process.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or `index >= count`.
    #[must_use]
    pub fn cached_shard_report(&self, index: usize, count: usize) -> Option<CampaignReport> {
        let cache = self.cell_cache()?;
        let specs = self.shard(index, count);
        let mut cells = Vec::with_capacity(specs.len());
        for spec in specs {
            cells.push(cache.lookup(&spec)?);
        }
        let total_wall = cells.iter().map(|cell| cell.wall).sum();
        Some(
            CampaignReport::new(
                self.name.clone(),
                self.base_seed,
                self.plan_hash(),
                self.shape(),
                1,
                cells,
                total_wall,
            )
            .with_cache_stats(cache.stats()),
        )
    }

    /// Executes a single cell in a freshly provisioned world (convenience
    /// wrapper; sweeps should prefer [`run_cells`](Self::run_cells), which
    /// provisions each (configuration, world) pair once).
    #[must_use]
    pub fn run_cell(&self, spec: CellSpec) -> CellResult {
        let world = self.provisioned_kernel(spec.config_index, spec.world_index);
        self.run_cell_in(spec, &world)
    }

    /// Executes a single cell: instantiate into the provisioned world,
    /// stage, run, collect, judge.
    fn run_cell_in(&self, spec: CellSpec, world: &OsKernel) -> CellResult {
        let started = Instant::now();
        let compiled = &self.configs[spec.config_index];
        let scenario = &self.scenarios[spec.scenario_index];
        let mut system = compiled.instantiate_in(world);
        let requests = (scenario.requests)(&system, spec.seed);
        let (outcome, exchanges) = serve_requests(&mut system, scenario.port, &requests);
        let verdict = scenario.judge.as_ref().map(|judge| {
            judge(
                compiled.config(),
                CellRun {
                    outcome: &outcome,
                    exchanges: &exchanges,
                },
            )
        });
        let checked = scenario
            .check
            .as_ref()
            .and_then(|check| check(compiled, self.worlds.get(spec.world_index), &spec));
        CellResult {
            spec,
            outcome: CellOutcome::from(&outcome),
            exchanges,
            transform_stats: *compiled.transform_stats(),
            verdict,
            checked,
            wall: saturating_elapsed(started),
        }
    }
}

fn saturating_elapsed(started: Instant) -> Duration {
    Instant::now().saturating_duration_since(started)
}

/// Suffixes repeated labels with their occurrence number (`label`,
/// `label#1`, `label#2`, ...) so every axis position has a unique label.
/// Generated suffixes are checked against everything already emitted, so a
/// caller-chosen name that *looks* like a suffix (`standard#1`) can never
/// collide with a generated one.
fn disambiguate_labels(labels: impl Iterator<Item = String>) -> Vec<String> {
    let mut used: BTreeSet<String> = BTreeSet::new();
    let mut occurrences: BTreeMap<String, usize> = BTreeMap::new();
    labels
        .map(|base| {
            let occurrence = occurrences.entry(base.clone()).or_insert(0);
            let mut label = if *occurrence == 0 {
                base.clone()
            } else {
                format!("{base}#{occurrence}")
            };
            *occurrence += 1;
            while !used.insert(label.clone()) {
                label = format!("{base}#{occurrence}");
                *occurrence += 1;
            }
            label
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant::NVariantSystemBuilder;

    const ECHO_SERVER: &str = r#"
        fn main() -> int {
            var sock: int;
            var conn: int;
            var request: buf[256];
            sock = socket();
            bind(sock, 80);
            listen(sock);
            setuid(48);
            conn = accept(sock);
            while (conn >= 0) {
                recv(conn, &request, 255);
                send_str(conn, "HTTP/1.0 200 OK\r\n\r\nok");
                close(conn);
                conn = accept(sock);
            }
            return 0;
        }
    "#;

    fn compiled(config: DeploymentConfig) -> Arc<CompiledSystem> {
        Arc::new(
            NVariantSystemBuilder::from_source(ECHO_SERVER)
                .unwrap()
                .config(config)
                .compile()
                .unwrap(),
        )
    }

    fn two_config_plan() -> CampaignPlan {
        CampaignPlan::new("echo")
            .config(compiled(DeploymentConfig::Unmodified))
            .config(compiled(DeploymentConfig::TwoVariantUid))
            .scenario(Scenario::new("ping", |_, seed| {
                vec![format!("GET /{} HTTP/1.0\r\n\r\n", seed % 10).into_bytes()]
            }))
            .scenario(
                Scenario::fixed_requests(
                    "double",
                    vec![
                        b"GET /a HTTP/1.0\r\n\r\n".to_vec(),
                        b"GET /b HTTP/1.0\r\n\r\n".to_vec(),
                    ],
                )
                .with_judge(|config, run| CellVerdict {
                    observed: format!("{} served", run.exchanges.len()),
                    expected: format!("{} served", if config.variant_count() > 0 { 2 } else { 0 }),
                }),
            )
            .replicates(2)
    }

    #[test]
    fn matrix_enumerates_cells_in_canonical_order() {
        let plan = two_config_plan();
        let cells = plan.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].config_label, "Unmodified");
        assert_eq!(cells[0].world_label, "template");
        assert_eq!(cells[0].scenario_label, "ping");
        assert_eq!(cells[0].replicate, 0);
        assert_eq!(cells[1].replicate, 1);
        assert_eq!(cells[2].scenario_label, "double");
        assert_eq!(cells[4].config_label, "2-Variant UID");
        // Replicates of the same triple get distinct seeds.
        assert_ne!(cells[0].seed, cells[1].seed);
    }

    #[test]
    fn world_axis_multiplies_the_matrix() {
        let plan = two_config_plan()
            .world(WorldTemplate::standard())
            .world(WorldTemplate::alternate_accounts());
        let cells = plan.cells();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        assert_eq!(plan.world_count(), 2);
        assert_eq!(cells[0].world_label, "standard");
        // World-major within a configuration: all standard-world cells of a
        // configuration come before its alt-accounts cells.
        assert_eq!(cells[3].world_label, "standard");
        assert_eq!(cells[4].world_label, "alt-accounts");
        assert_eq!(cells[4].config_label, "Unmodified");
        assert_eq!(cells[8].config_label, "2-Variant UID");
        // The world coordinate perturbs the seed: the same (config,
        // scenario, replicate) in two worlds draws different seeds.
        assert_ne!(cells[0].seed, cells[4].seed);
    }

    #[test]
    fn duplicate_config_labels_are_disambiguated_by_position() {
        let plan = CampaignPlan::new("dup")
            .config(compiled(DeploymentConfig::TwoVariantUid))
            .config(compiled(DeploymentConfig::TwoVariantUid))
            .config(compiled(DeploymentConfig::TwoVariantUid))
            .scenario(Scenario::fixed_requests("ping", vec![]));
        assert_eq!(
            plan.config_labels(),
            vec!["2-Variant UID", "2-Variant UID#1", "2-Variant UID#2"]
        );
        let cells = plan.cells();
        assert_eq!(cells[0].config_label, "2-Variant UID");
        assert_eq!(cells[1].config_label, "2-Variant UID#1");
        assert_eq!(cells[2].config_label, "2-Variant UID#2");
    }

    #[test]
    fn duplicate_world_labels_are_disambiguated_by_position() {
        // Two tweaked variants of the same environment keep distinct
        // labels, so label-keyed world lookups never conflate positions.
        let plan = two_config_plan()
            .world(WorldTemplate::standard())
            .world(WorldTemplate::new(
                "standard",
                nvariant_simos::WorldBuilder::standard()
                    .listen_port(8080)
                    .build(),
            ));
        assert_eq!(plan.world_labels(), vec!["standard", "standard#1"]);
        let cells = plan.cells();
        assert_eq!(cells[0].world_label, "standard");
        assert_eq!(cells[4].world_label, "standard#1");
    }

    #[test]
    fn disambiguation_never_collides_with_suffix_shaped_names() {
        // A caller-chosen name that looks like a generated suffix must not
        // be conflated with one: every emitted label stays unique.
        let labels = disambiguate_labels(
            ["standard", "standard", "standard#1", "standard"]
                .into_iter()
                .map(String::from),
        );
        // The second "standard" claims the generated "standard#1" first, so
        // the later caller-chosen "standard#1" is itself bumped.
        assert_eq!(
            labels,
            vec!["standard", "standard#1", "standard#1#1", "standard#2"]
        );
        let unique: std::collections::BTreeSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn shards_partition_the_cell_list() {
        let plan = two_config_plan().world(WorldTemplate::standard());
        let all = plan.cells();
        for count in [1, 2, 3, 4, all.len() + 1] {
            let mut reassembled: Vec<Option<CellSpec>> = vec![None; all.len()];
            for index in 0..count {
                for (offset, cell) in plan.shard(index, count).into_iter().enumerate() {
                    let position = index + offset * count;
                    assert!(reassembled[position].is_none(), "overlapping shards");
                    reassembled[position] = Some(cell);
                }
            }
            let reassembled: Vec<CellSpec> = reassembled.into_iter().map(Option::unwrap).collect();
            assert_eq!(reassembled, all, "{count} shards");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let _ = two_config_plan().shard(2, 2);
    }

    #[test]
    fn plan_hash_is_stable_and_axis_sensitive() {
        let plan = two_config_plan();
        // Stable: the same plan always hashes identically, and the hash is
        // what every report of the plan carries.
        assert_eq!(plan.plan_hash(), plan.clone().plan_hash());
        assert_eq!(plan.run(1).plan_hash, plan.plan_hash());
        assert_eq!(plan.run_shard(0, 2, 1).plan_hash, plan.plan_hash());
        // Sensitive: every axis (and the identity fields) perturbs it.
        let base = plan.plan_hash();
        assert_ne!(base, plan.clone().seed(99).plan_hash());
        assert_ne!(base, plan.clone().replicates(3).plan_hash());
        assert_ne!(
            base,
            plan.clone().world(WorldTemplate::standard()).plan_hash()
        );
        assert_ne!(
            base,
            plan.clone()
                .scenario(Scenario::fixed_requests("extra", vec![]))
                .plan_hash()
        );
        assert_ne!(
            base,
            plan.clone()
                .config(compiled(DeploymentConfig::TwoVariantAddress))
                .plan_hash()
        );
        // A scenario's port and judging mode are part of its identity.
        let with_port = CampaignPlan::new("p")
            .config(compiled(DeploymentConfig::Unmodified))
            .scenario(Scenario::fixed_requests("s", vec![]).on_port(nvariant_types::Port::new(81)));
        let without_port = CampaignPlan::new("p")
            .config(compiled(DeploymentConfig::Unmodified))
            .scenario(Scenario::fixed_requests("s", vec![]));
        assert_ne!(with_port.plan_hash(), without_port.plan_hash());
    }

    #[test]
    fn shape_matches_the_cell_list() {
        let plan = two_config_plan().world(WorldTemplate::standard());
        let shape = plan.shape();
        assert_eq!(shape.configs, 2);
        assert_eq!(shape.worlds, 1);
        assert_eq!(shape.scenarios, 2);
        assert_eq!(shape.replicates, 2);
        assert_eq!(shape.cell_count(), plan.cells().len());
        // The shape's coordinate enumeration is exactly the cell list's.
        let coords: Vec<_> = plan.cells().iter().map(CellSpec::coordinates).collect();
        assert_eq!(shape.coordinates(), coords);
        // A world-less plan still has the implicit template world.
        assert_eq!(two_config_plan().shape().worlds, 1);
    }

    #[test]
    fn plan_runs_and_judges_cells() {
        let report = two_config_plan().run(2);
        assert_eq!(report.cells.len(), 8);
        assert!(report
            .cells
            .iter()
            .all(|cell| cell.outcome.exited_normally()));
        let judged: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.spec.scenario_label == "double")
            .collect();
        assert_eq!(judged.len(), 4);
        assert!(judged
            .iter()
            .all(|c| c.verdict.as_ref().is_some_and(CellVerdict::matches)));
        // Unjudged scenario cells carry no verdict.
        assert!(report
            .cells
            .iter()
            .filter(|c| c.spec.scenario_label == "ping")
            .all(|c| c.verdict.is_none()));
    }

    #[test]
    fn worker_count_does_not_change_deterministic_content() {
        let plan = two_config_plan();
        let serial = plan.run(1);
        let parallel = plan.run(4);
        assert_eq!(serial.canonical_text(), parallel.canonical_text());
    }

    #[test]
    fn sharded_run_merges_into_the_unsharded_report() {
        let plan = two_config_plan().world(WorldTemplate::standard());
        let whole = plan.run(2);
        for count in [2, 3] {
            let shards: Vec<CampaignReport> = (0..count)
                .map(|index| plan.run_shard(index, count, 2))
                .collect();
            let merged = CampaignReport::merge(shards).expect("shards merge");
            assert_eq!(merged.canonical_text(), whole.canonical_text(), "{count}");
        }
    }

    #[test]
    fn cells_run_in_their_world() {
        // The alternate-docroot world serves the same page names from a
        // different tree; an echo server doesn't read files, so assert on
        // the provisioned kernels instead.
        let plan = two_config_plan()
            .world(WorldTemplate::standard())
            .world(WorldTemplate::alternate_docroot());
        let standard = plan.provisioned_kernel(1, 0);
        let alternate = plan.provisioned_kernel(1, 1);
        assert!(standard.fs().exists("/var/www/html/index.html"));
        assert!(!standard.fs().exists("/srv/webroot/index.html"));
        assert!(alternate.fs().exists("/srv/webroot/index.html"));
        // Unshared account files are re-provisioned per world.
        assert!(standard.fs().exists("/etc/passwd-1"));
        assert!(alternate.fs().exists("/etc/passwd-1"));
    }
}
