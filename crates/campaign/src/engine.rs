//! The worker pool: a scoped-thread fan-out that preserves input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over every item on `workers` scoped threads and returns the
/// results in input order.
///
/// Work is claimed with an atomic cursor, so the schedule is dynamic but
/// the result vector is positionally stable: `out[i]` is always `f(items[i])`
/// regardless of the worker count. With `workers <= 1` the items run
/// serially on the calling thread.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins every worker first).
pub fn run_parallel<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Send + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let total = items.len();
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..workers.min(total) {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let item = slots[index]
                    .lock()
                    .expect("work slot poisoned")
                    .take()
                    .expect("each slot is claimed exactly once");
                let result = f(index, item);
                *results[index].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

/// Deterministic per-cell seed derivation: a splitmix64 chain over the
/// plan's base seed and the cell's matrix coordinates.
///
/// The derived seed depends only on
/// `(base, config, world, scenario, replicate)`, never on scheduling or
/// sharding, so a plan produces the same per-cell seeds at any worker count
/// and on any shard — the invariant that lets
/// [`CampaignReport::merge`](crate::CampaignReport::merge) reassemble shard
/// runs byte-for-byte.
#[must_use]
pub fn cell_seed(base: u64, config: usize, world: usize, scenario: usize, replicate: usize) -> u64 {
    let mut state = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    for coordinate in [
        config as u64,
        world as u64,
        scenario as u64,
        replicate as u64,
    ] {
        state ^= coordinate.wrapping_add(0x9E37_79B9_7F4A_7C15);
        state = splitmix64(state);
    }
    state
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..50).collect();
        let serial = run_parallel(items.clone(), 1, |i, x| (i as u64, x * 2));
        for workers in [2, 4, 8] {
            let parallel = run_parallel(items.clone(), workers, |i, x| (i as u64, x * 2));
            assert_eq!(serial, parallel, "workers = {workers}");
        }
        assert_eq!(serial[17], (17, 34));
    }

    #[test]
    fn empty_and_single_item_inputs_are_fine() {
        let empty: Vec<u8> = vec![];
        assert!(run_parallel(empty, 4, |_, x: u8| x).is_empty());
        assert_eq!(run_parallel(vec![9], 4, |i, x| (i, x)), vec![(0, 9)]);
    }

    #[test]
    fn cell_seeds_are_deterministic_and_distinct() {
        let a = cell_seed(7, 0, 0, 0, 0);
        assert_eq!(a, cell_seed(7, 0, 0, 0, 0));
        // Every coordinate perturbs the seed.
        assert_ne!(a, cell_seed(8, 0, 0, 0, 0));
        assert_ne!(a, cell_seed(7, 1, 0, 0, 0));
        assert_ne!(a, cell_seed(7, 0, 1, 0, 0));
        assert_ne!(a, cell_seed(7, 0, 0, 1, 0));
        assert_ne!(a, cell_seed(7, 0, 0, 0, 1));
        // Coordinates are not interchangeable.
        assert_ne!(cell_seed(7, 1, 0, 0, 0), cell_seed(7, 0, 1, 0, 0));
        assert_ne!(cell_seed(7, 0, 1, 0, 0), cell_seed(7, 0, 0, 1, 0));
        assert_ne!(cell_seed(7, 0, 0, 1, 0), cell_seed(7, 0, 0, 0, 1));
    }
}
