//! The `Campaign` abstraction: a matrix of (configuration, scenario,
//! replicate) cells over build-once [`CompiledSystem`] artifacts, executed
//! across a scoped worker pool.

use crate::cell::{CellResult, CellSpec, CellVerdict};
use crate::engine::{cell_seed, run_parallel};
use crate::exchange::ServedRequest;
use crate::report::CampaignReport;
use nvariant::{CompiledSystem, DeploymentConfig, RunnableSystem, SystemOutcome};
use nvariant_types::Port;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What a scenario's judge sees: the terminated system plus the served
/// request/response pairs of one cell.
#[derive(Clone, Copy, Debug)]
pub struct CellRun<'a> {
    /// How the deployed system terminated.
    pub outcome: &'a SystemOutcome,
    /// The request/response pairs, in arrival order.
    pub exchanges: &'a [ServedRequest],
}

/// Stages `requests` on `port`, runs `system` to completion and pairs each
/// observed connection with its response. The one canonical
/// stage-run-collect sequence: campaign cells and direct scenario runners
/// share it, so what a cell reports and what a hand-driven system reports
/// cannot drift apart.
pub fn serve_requests(
    system: &mut RunnableSystem,
    port: Port,
    requests: &[Vec<u8>],
) -> (SystemOutcome, Vec<ServedRequest>) {
    for request in requests {
        system
            .kernel_mut()
            .net_mut()
            .preload_request(port, request.clone());
    }
    let outcome = system.run();
    let exchanges = system
        .kernel()
        .net()
        .connections()
        .map(|conn| ServedRequest {
            request: conn.request.clone(),
            response: conn.response.clone(),
        })
        .collect();
    (outcome, exchanges)
}

type RequestFn = dyn Fn(&RunnableSystem, u64) -> Vec<Vec<u8>> + Send + Sync;
type JudgeFn = dyn Fn(&DeploymentConfig, CellRun<'_>) -> CellVerdict + Send + Sync;

/// One scenario of a campaign: a labelled request generator plus an
/// optional judge that classifies what each cell achieved.
///
/// The generator receives the freshly instantiated system (so payloads may
/// inspect symbol addresses, exactly like a real attacker with a leaked
/// binary) and the cell's deterministic seed.
#[derive(Clone)]
pub struct Scenario {
    label: String,
    port: Port,
    requests: Arc<RequestFn>,
    judge: Option<Arc<JudgeFn>>,
}

impl Scenario {
    /// Creates a scenario from a request generator.
    pub fn new(
        label: impl Into<String>,
        requests: impl Fn(&RunnableSystem, u64) -> Vec<Vec<u8>> + Send + Sync + 'static,
    ) -> Self {
        Scenario {
            label: label.into(),
            port: Port::HTTP,
            requests: Arc::new(requests),
            judge: None,
        }
    }

    /// Creates a scenario that always stages the same fixed request batch.
    pub fn fixed_requests(label: impl Into<String>, requests: Vec<Vec<u8>>) -> Self {
        Scenario::new(label, move |_, _| requests.clone())
    }

    /// Stages requests on `port` instead of the default HTTP port.
    #[must_use]
    pub fn on_port(mut self, port: Port) -> Self {
        self.port = port;
        self
    }

    /// Attaches a judge that classifies each cell (observed vs. expected).
    #[must_use]
    pub fn with_judge(
        mut self,
        judge: impl Fn(&DeploymentConfig, CellRun<'_>) -> CellVerdict + Send + Sync + 'static,
    ) -> Self {
        self.judge = Some(Arc::new(judge));
        self
    }

    /// The scenario's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("label", &self.label)
            .field("port", &self.port)
            .field("judged", &self.judge.is_some())
            .finish()
    }
}

/// A campaign: every configuration × every scenario × `replicates` cells,
/// each with a deterministic seed, executed by [`run`](Campaign::run).
///
/// Configurations enter as [`CompiledSystem`] artifacts, so the expensive
/// parse/transform/compile/provision pipeline runs **once per
/// configuration** no matter how many cells the matrix has; each cell only
/// pays [`CompiledSystem::instantiate`].
#[derive(Clone, Debug)]
pub struct Campaign {
    name: String,
    configs: Vec<Arc<CompiledSystem>>,
    scenarios: Vec<Scenario>,
    replicates: usize,
    base_seed: u64,
}

impl Campaign {
    /// Starts an empty campaign.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Campaign {
            name: name.into(),
            configs: Vec::new(),
            scenarios: Vec::new(),
            replicates: 1,
            base_seed: 0x5EED,
        }
    }

    /// Adds a compiled configuration to the matrix.
    #[must_use]
    pub fn config(mut self, compiled: impl Into<Arc<CompiledSystem>>) -> Self {
        self.configs.push(compiled.into());
        self
    }

    /// Adds every artifact in `compiled` to the matrix.
    #[must_use]
    pub fn configs(mut self, compiled: impl IntoIterator<Item = Arc<CompiledSystem>>) -> Self {
        self.configs.extend(compiled);
        self
    }

    /// Adds a scenario to the matrix.
    #[must_use]
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenarios.push(scenario);
        self
    }

    /// Sets how many replicates of each (config, scenario) pair run
    /// (default 1; each replicate gets a distinct deterministic seed).
    #[must_use]
    pub fn replicates(mut self, replicates: usize) -> Self {
        self.replicates = replicates.max(1);
        self
    }

    /// Sets the campaign's base seed (default `0x5EED`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// The campaign's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled configurations in the matrix.
    #[must_use]
    pub fn compiled_configs(&self) -> &[Arc<CompiledSystem>] {
        &self.configs
    }

    /// The full cell list, in canonical (config-major) order.
    #[must_use]
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells =
            Vec::with_capacity(self.configs.len() * self.scenarios.len() * self.replicates);
        for (config_index, compiled) in self.configs.iter().enumerate() {
            for (scenario_index, scenario) in self.scenarios.iter().enumerate() {
                for replicate in 0..self.replicates {
                    cells.push(CellSpec {
                        config_index,
                        scenario_index,
                        replicate,
                        config_label: compiled.config().label(),
                        scenario_label: scenario.label.clone(),
                        seed: cell_seed(self.base_seed, config_index, scenario_index, replicate),
                    });
                }
            }
        }
        cells
    }

    /// Executes every cell across `workers` threads and aggregates the
    /// results. Cell results come back in canonical order and each cell's
    /// behaviour depends only on its spec, so the report's deterministic
    /// content is identical at any worker count.
    #[must_use]
    pub fn run(&self, workers: usize) -> CampaignReport {
        let started = Instant::now();
        let cells = self.cells();
        let results = run_parallel(cells, workers, |_, spec| self.run_cell(spec));
        CampaignReport::new(
            self.name.clone(),
            self.base_seed,
            workers.max(1),
            results,
            started.elapsed(),
        )
    }

    /// Executes a single cell: instantiate, stage, run, collect, judge.
    #[must_use]
    pub fn run_cell(&self, spec: CellSpec) -> CellResult {
        let started = Instant::now();
        let compiled = &self.configs[spec.config_index];
        let scenario = &self.scenarios[spec.scenario_index];
        let mut system = compiled.instantiate();
        let requests = (scenario.requests)(&system, spec.seed);
        let (outcome, exchanges) = serve_requests(&mut system, scenario.port, &requests);
        let verdict = scenario.judge.as_ref().map(|judge| {
            judge(
                compiled.config(),
                CellRun {
                    outcome: &outcome,
                    exchanges: &exchanges,
                },
            )
        });
        CellResult {
            spec,
            outcome,
            exchanges,
            transform_stats: *compiled.transform_stats(),
            verdict,
            wall: saturating_elapsed(started),
        }
    }
}

fn saturating_elapsed(started: Instant) -> Duration {
    Instant::now().saturating_duration_since(started)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant::NVariantSystemBuilder;

    const ECHO_SERVER: &str = r#"
        fn main() -> int {
            var sock: int;
            var conn: int;
            var request: buf[256];
            sock = socket();
            bind(sock, 80);
            listen(sock);
            setuid(48);
            conn = accept(sock);
            while (conn >= 0) {
                recv(conn, &request, 255);
                send_str(conn, "HTTP/1.0 200 OK\r\n\r\nok");
                close(conn);
                conn = accept(sock);
            }
            return 0;
        }
    "#;

    fn compiled(config: DeploymentConfig) -> Arc<CompiledSystem> {
        Arc::new(
            NVariantSystemBuilder::from_source(ECHO_SERVER)
                .unwrap()
                .config(config)
                .compile()
                .unwrap(),
        )
    }

    fn two_config_campaign() -> Campaign {
        Campaign::new("echo")
            .config(compiled(DeploymentConfig::Unmodified))
            .config(compiled(DeploymentConfig::TwoVariantUid))
            .scenario(Scenario::new("ping", |_, seed| {
                vec![format!("GET /{} HTTP/1.0\r\n\r\n", seed % 10).into_bytes()]
            }))
            .scenario(
                Scenario::fixed_requests(
                    "double",
                    vec![
                        b"GET /a HTTP/1.0\r\n\r\n".to_vec(),
                        b"GET /b HTTP/1.0\r\n\r\n".to_vec(),
                    ],
                )
                .with_judge(|config, run| CellVerdict {
                    observed: format!("{} served", run.exchanges.len()),
                    expected: format!("{} served", if config.variant_count() > 0 { 2 } else { 0 }),
                }),
            )
            .replicates(2)
    }

    #[test]
    fn matrix_enumerates_cells_in_canonical_order() {
        let campaign = two_config_campaign();
        let cells = campaign.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert_eq!(cells[0].config_label, "Unmodified");
        assert_eq!(cells[0].scenario_label, "ping");
        assert_eq!(cells[0].replicate, 0);
        assert_eq!(cells[1].replicate, 1);
        assert_eq!(cells[2].scenario_label, "double");
        assert_eq!(cells[4].config_label, "2-Variant UID");
        // Replicates of the same pair get distinct seeds.
        assert_ne!(cells[0].seed, cells[1].seed);
    }

    #[test]
    fn campaign_runs_and_judges_cells() {
        let report = two_config_campaign().run(2);
        assert_eq!(report.cells.len(), 8);
        assert!(report
            .cells
            .iter()
            .all(|cell| cell.outcome.exited_normally()));
        let judged: Vec<_> = report
            .cells
            .iter()
            .filter(|c| c.spec.scenario_label == "double")
            .collect();
        assert_eq!(judged.len(), 4);
        assert!(judged
            .iter()
            .all(|c| c.verdict.as_ref().is_some_and(CellVerdict::matches)));
        // Unjudged scenario cells carry no verdict.
        assert!(report
            .cells
            .iter()
            .filter(|c| c.spec.scenario_label == "ping")
            .all(|c| c.verdict.is_none()));
    }

    #[test]
    fn worker_count_does_not_change_deterministic_content() {
        let campaign = two_config_campaign();
        let serial = campaign.run(1);
        let parallel = campaign.run(4);
        assert_eq!(serial.canonical_text(), parallel.canonical_text());
    }
}
