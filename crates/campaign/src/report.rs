//! Aggregated campaign results: per-cell observations, summary statistics,
//! and the merge operation that reassembles sharded runs.

use crate::cell::{CellResult, RequestTally};
use nvariant::ExecutionMetrics;
use nvariant_transform::TransformStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// Why [`CampaignReport::merge`] refused to combine shard reports.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// No reports were supplied.
    Empty,
    /// Two shards claim to come from differently named plans.
    NameMismatch(String, String),
    /// Two shards claim to come from plans with different base seeds.
    SeedMismatch(u64, u64),
    /// Two shards both contain the cell at these canonical coordinates
    /// (config, world, scenario, replicate) — they do not partition a plan.
    DuplicateCell(usize, usize, usize, usize),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard reports to merge"),
            MergeError::NameMismatch(a, b) => {
                write!(f, "shards come from different plans: {a:?} vs {b:?}")
            }
            MergeError::SeedMismatch(a, b) => {
                write!(f, "shards come from different base seeds: {a:#x} vs {b:#x}")
            }
            MergeError::DuplicateCell(c, w, s, r) => write!(
                f,
                "cell (config {c}, world {w}, scenario {s}, replicate {r}) appears in more \
                 than one shard"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// Nearest-rank latency percentiles over per-cell wall-clock times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WallPercentiles {
    /// Median per-cell wall time.
    pub p50: Duration,
    /// 95th-percentile per-cell wall time.
    pub p95: Duration,
    /// 99th-percentile per-cell wall time.
    pub p99: Duration,
}

impl fmt::Display for WallPercentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {:.1?}, p95 {:.1?}, p99 {:.1?}",
            self.p50, self.p95, self.p99
        )
    }
}

/// Everything a campaign run produced: per-cell results plus run metadata.
///
/// The deterministic content — every cell's spec, outcome, exchanges,
/// verdict — is fixed by the plan and base seed alone;
/// [`canonical_text`](Self::canonical_text) serializes exactly that subset,
/// so runs at different worker counts, and sharded runs reassembled with
/// [`merge`](Self::merge), compare byte-identically. Wall-clock fields
/// (`total_wall`, per-cell `wall`, `workers`) are measurement metadata and
/// stay out of the canonical form.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The plan's name.
    pub name: String,
    /// The plan's base seed.
    pub base_seed: u64,
    /// Worker threads the run used.
    pub workers: usize,
    /// Per-cell results, in canonical (config-major) order for whole runs,
    /// or in shard order for [`run_shard`](crate::CampaignPlan::run_shard)
    /// reports (merging restores canonical order).
    pub cells: Vec<CellResult>,
    /// Wall-clock time of the whole run (the sum of shard walls after a
    /// merge).
    pub total_wall: Duration,
}

impl CampaignReport {
    /// Assembles a report (used by [`CampaignPlan::run`](crate::CampaignPlan::run)).
    #[must_use]
    pub fn new(
        name: String,
        base_seed: u64,
        workers: usize,
        cells: Vec<CellResult>,
        total_wall: Duration,
    ) -> Self {
        CampaignReport {
            name,
            base_seed,
            workers,
            cells,
            total_wall,
        }
    }

    /// Reassembles shard reports into the report an unsharded run produces:
    /// cells are restored to canonical coordinate order, so the merged
    /// [`canonical_text`](Self::canonical_text) is byte-identical to the
    /// whole run's. Shard walls sum into `total_wall` (total compute spent),
    /// and `workers` records the widest shard.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError`] if no reports are supplied, the reports
    /// disagree on plan name or base seed, or two reports contain the same
    /// cell.
    pub fn merge(shards: impl IntoIterator<Item = CampaignReport>) -> Result<Self, MergeError> {
        let mut shards = shards.into_iter();
        let mut merged = shards.next().ok_or(MergeError::Empty)?;
        for shard in shards {
            if shard.name != merged.name {
                return Err(MergeError::NameMismatch(merged.name, shard.name));
            }
            if shard.base_seed != merged.base_seed {
                return Err(MergeError::SeedMismatch(merged.base_seed, shard.base_seed));
            }
            merged.workers = merged.workers.max(shard.workers);
            merged.total_wall += shard.total_wall;
            merged.cells.extend(shard.cells);
        }
        merged.cells.sort_by_key(|cell| cell.spec.coordinates());
        for pair in merged.cells.windows(2) {
            if pair[0].spec.coordinates() == pair[1].spec.coordinates() {
                let (c, w, s, r) = pair[0].spec.coordinates();
                return Err(MergeError::DuplicateCell(c, w, s, r));
            }
        }
        Ok(merged)
    }

    /// Fraction of cells in which the monitor raised an alarm.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        self.rate(|cell| cell.outcome.detected_attack())
    }

    /// Fraction of cells that ran to a normal, agreed exit.
    #[must_use]
    pub fn survival_rate(&self) -> f64 {
        self.rate(|cell| cell.outcome.exited_normally())
    }

    fn rate(&self, predicate: impl Fn(&CellResult) -> bool) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| predicate(c)).count() as f64 / self.cells.len() as f64
    }

    /// Response status counts over every cell.
    #[must_use]
    pub fn request_tally(&self) -> RequestTally {
        let mut tally = RequestTally::default();
        for cell in &self.cells {
            tally.absorb(&cell.tally());
        }
        tally
    }

    /// Execution counters summed over every cell.
    #[must_use]
    pub fn total_metrics(&self) -> ExecutionMetrics {
        let mut total = ExecutionMetrics::default();
        for cell in &self.cells {
            total.absorb(&cell.outcome.metrics);
        }
        total
    }

    /// Nearest-rank p50/p95/p99 of per-cell wall-clock times, or `None` for
    /// an empty report. Wall times are measurement metadata (they vary run
    /// to run), so the percentiles appear in
    /// [`render_summary`](Self::render_summary) but never in the canonical
    /// serialization.
    #[must_use]
    pub fn wall_percentiles(&self) -> Option<WallPercentiles> {
        if self.cells.is_empty() {
            return None;
        }
        let mut walls: Vec<Duration> = self.cells.iter().map(|c| c.wall).collect();
        walls.sort_unstable();
        let nearest_rank = |percent: usize| -> Duration {
            // ceil(percent/100 * n) as a 1-based rank, clamped to the list.
            let rank = (walls.len() * percent).div_ceil(100).max(1);
            walls[rank - 1]
        };
        Some(WallPercentiles {
            p50: nearest_rank(50),
            p95: nearest_rank(95),
            p99: nearest_rank(99),
        })
    }

    /// The transformation change counts per configuration (one row per
    /// `config_index`, in matrix order; labels are already position-unique
    /// because the plan disambiguates duplicates).
    #[must_use]
    pub fn transform_stats_by_config(&self) -> Vec<(String, TransformStats)> {
        let mut seen: Vec<usize> = Vec::new();
        let mut rows: Vec<(String, TransformStats)> = Vec::new();
        for cell in &self.cells {
            if !seen.contains(&cell.spec.config_index) {
                seen.push(cell.spec.config_index);
                rows.push((cell.spec.config_label.clone(), cell.transform_stats));
            }
        }
        rows
    }

    /// The judged cells whose observation disagreed with the prediction.
    #[must_use]
    pub fn verdict_mismatches(&self) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|cell| cell.verdict.as_ref().is_some_and(|v| !v.matches()))
            .collect()
    }

    /// Number of judged cells.
    #[must_use]
    pub fn judged_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.verdict.is_some()).count()
    }

    /// The cells belonging to one configuration label, in canonical order.
    /// Plan-produced labels are position-unique (duplicate configuration
    /// labels are disambiguated with a `#<n>` suffix when the cell list is
    /// built), so a label names exactly one matrix position; use
    /// [`cells_for_config_index`](Self::cells_for_config_index) when the
    /// position itself is known.
    #[must_use]
    pub fn cells_for_config<'a>(&'a self, label: &str) -> Vec<&'a CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.config_label == label)
            .collect()
    }

    /// The cells belonging to the configuration at `config_index` in the
    /// plan's matrix, in canonical order.
    #[must_use]
    pub fn cells_for_config_index(&self, config_index: usize) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.config_index == config_index)
            .collect()
    }

    /// The cells belonging to one world label, in canonical order.
    #[must_use]
    pub fn cells_for_world<'a>(&'a self, label: &str) -> Vec<&'a CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.world_label == label)
            .collect()
    }

    /// The cells belonging to one scenario label, in canonical order.
    #[must_use]
    pub fn cells_for_scenario<'a>(&'a self, label: &str) -> Vec<&'a CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.scenario_label == label)
            .collect()
    }

    /// The distinct world labels appearing in the report, in first-seen
    /// (canonical) order.
    #[must_use]
    pub fn world_labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !labels.contains(&cell.spec.world_label.as_str()) {
                labels.push(&cell.spec.world_label);
            }
        }
        labels
    }

    /// The deterministic serialization of the run: plan identity plus one
    /// canonical line per cell. Byte-identical across worker counts, and —
    /// for a merged set of shards partitioning a plan — byte-identical to
    /// the unsharded run.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        let mut out = format!(
            "campaign={:?} seed={:#018x} cells={}\n",
            self.name,
            self.base_seed,
            self.cells.len()
        );
        for cell in &self.cells {
            out.push_str(&cell.canonical_line());
            out.push('\n');
        }
        out
    }

    /// A human-oriented summary: rates, totals, latency percentiles and
    /// timing.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let tally = self.request_tally();
        let metrics = self.total_metrics();
        let slowest = self
            .cells
            .iter()
            .max_by_key(|c| c.wall)
            .map_or(Duration::ZERO, |c| c.wall);
        let mut out = format!(
            "campaign '{}': {} cells on {} workers in {:.1?} (slowest cell {:.1?})\n",
            self.name,
            self.cells.len(),
            self.workers,
            self.total_wall,
            slowest,
        );
        out.push_str(&format!(
            "  survival rate {:.1}%, detection rate {:.1}%\n",
            self.survival_rate() * 100.0,
            self.detection_rate() * 100.0
        ));
        out.push_str(&format!("  {tally}\n"));
        out.push_str(&format!("  {metrics}\n"));
        if let Some(percentiles) = self.wall_percentiles() {
            out.push_str(&format!("  per-cell wall {percentiles}\n"));
        }
        let worlds = self.world_labels();
        if worlds.len() > 1 {
            out.push_str(&format!(
                "  {} worlds on the environment axis: {}\n",
                worlds.len(),
                worlds.join(", ")
            ));
        }
        let judged = self.judged_cells();
        if judged > 0 {
            out.push_str(&format!(
                "  {} of {} judged cells match their prediction\n",
                judged - self.verdict_mismatches().len(),
                judged
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellOutcome, CellSpec, CellVerdict};
    use crate::exchange::ServedRequest;

    fn cell(config: &str, ok: bool, verdict: Option<CellVerdict>) -> CellResult {
        CellResult {
            spec: CellSpec {
                config_index: usize::from(config.as_bytes()[0] - b'A'),
                world_index: 0,
                scenario_index: 0,
                replicate: 0,
                config_label: config.to_string(),
                world_label: "template".to_string(),
                scenario_label: "s".to_string(),
                seed: 1,
            },
            outcome: CellOutcome {
                exit_status: ok.then_some(0),
                alarm: None,
                fault: (!ok).then(|| "fault".to_string()),
                metrics: ExecutionMetrics {
                    variants: 1,
                    total_instructions: 100,
                    syscalls: 5,
                    monitor_checks: 0,
                    detection_calls: 0,
                    io_bytes: 10,
                },
            },
            exchanges: vec![ServedRequest {
                request: vec![],
                response: b"HTTP/1.1 200 OK\r\n\r\nok".to_vec(),
            }],
            transform_stats: TransformStats::default(),
            verdict,
            wall: Duration::from_millis(3),
        }
    }

    fn report(cells: Vec<CellResult>) -> CampaignReport {
        CampaignReport::new("t".to_string(), 7, 2, cells, Duration::from_millis(9))
    }

    #[test]
    fn rates_and_tallies_aggregate() {
        let report = report(vec![
            cell("A", true, None),
            cell("A", false, None),
            cell("B", true, None),
        ]);
        assert!((report.survival_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.detection_rate(), 0.0);
        assert_eq!(report.request_tally().ok, 3);
        assert_eq!(report.total_metrics().total_instructions, 300);
        assert_eq!(report.transform_stats_by_config().len(), 2);
        assert_eq!(report.cells_for_config("A").len(), 2);
        assert_eq!(report.cells_for_scenario("s").len(), 3);
        assert_eq!(report.cells_for_world("template").len(), 3);
        assert_eq!(report.world_labels(), vec!["template"]);
        assert!(report.render_summary().contains("3 cells"));
    }

    #[test]
    fn aggregation_keys_on_config_index_not_label() {
        // Two distinct matrix positions: the plan would have disambiguated
        // their labels, but aggregation must key on the index regardless.
        let a = cell("A", true, None);
        let mut b = cell("A", true, None);
        b.spec.config_index = 25;
        b.spec.config_label = "A#1".to_string();
        b.transform_stats.uid_constants_reexpressed = 5;
        let report = report(vec![a, b]);
        let stats = report.transform_stats_by_config();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "A");
        assert_eq!(stats[1].0, "A#1");
        assert_eq!(stats[1].1.uid_constants_reexpressed, 5);
        // Disambiguated labels resolve to exactly one matrix position each.
        assert_eq!(report.cells_for_config("A").len(), 1);
        assert_eq!(report.cells_for_config("A#1").len(), 1);
        assert_eq!(report.cells_for_config_index(25).len(), 1);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let report = report(vec![]);
        assert_eq!(report.survival_rate(), 0.0);
        assert_eq!(report.detection_rate(), 0.0);
        assert_eq!(report.wall_percentiles(), None);
    }

    #[test]
    fn mismatches_are_surfaced() {
        let hit = CellVerdict {
            observed: "x".to_string(),
            expected: "x".to_string(),
        };
        let miss = CellVerdict {
            observed: "x".to_string(),
            expected: "y".to_string(),
        };
        let report = report(vec![
            cell("A", true, Some(hit)),
            cell("A", true, Some(miss)),
            cell("A", true, None),
        ]);
        assert_eq!(report.judged_cells(), 2);
        assert_eq!(report.verdict_mismatches().len(), 1);
        assert!(report.render_summary().contains("1 of 2 judged"));
    }

    #[test]
    fn canonical_text_excludes_wall_clock() {
        let mut a = cell("A", true, None);
        let mut b = a.clone();
        b.wall = Duration::from_secs(1000);
        let mut ra = report(vec![a.clone()]);
        let mut rb = report(vec![b]);
        ra.total_wall = Duration::from_millis(1);
        rb.total_wall = Duration::from_secs(99);
        ra.workers = 1;
        rb.workers = 4;
        assert_eq!(ra.canonical_text(), rb.canonical_text());
        a.outcome.exit_status = Some(1);
        assert_ne!(report(vec![a]).canonical_text(), ra.canonical_text());
    }

    #[test]
    fn wall_percentiles_use_nearest_rank() {
        let mut cells: Vec<CellResult> = (1..=100)
            .map(|ms| {
                let mut c = cell("A", true, None);
                c.spec.replicate = ms as usize;
                c.wall = Duration::from_millis(ms);
                c
            })
            .collect();
        // Shuffle-ish: percentiles must not depend on cell order.
        cells.reverse();
        let report = report(cells);
        let p = report.wall_percentiles().unwrap();
        assert_eq!(p.p50, Duration::from_millis(50));
        assert_eq!(p.p95, Duration::from_millis(95));
        assert_eq!(p.p99, Duration::from_millis(99));
        assert!(report.render_summary().contains("per-cell wall p50"));

        // A single cell is its own percentile everywhere.
        let single = super::CampaignReport::new(
            "t".to_string(),
            7,
            1,
            vec![cell("A", true, None)],
            Duration::ZERO,
        );
        let p = single.wall_percentiles().unwrap();
        assert_eq!(p.p50, p.p99);
    }

    #[test]
    fn merge_restores_canonical_order_and_sums_walls() {
        let mut c0 = cell("A", true, None);
        c0.spec.replicate = 0;
        let mut c1 = cell("A", true, None);
        c1.spec.replicate = 1;
        let mut c2 = cell("A", true, None);
        c2.spec.replicate = 2;
        let whole = report(vec![c0.clone(), c1.clone(), c2.clone()]);
        // Shards in round-robin order: {c0, c2} and {c1}.
        let shard_a = report(vec![c0, c2]);
        let mut shard_b = report(vec![c1]);
        shard_b.workers = 7;
        let merged = CampaignReport::merge([shard_a, shard_b]).unwrap();
        assert_eq!(merged.canonical_text(), whole.canonical_text());
        assert_eq!(merged.workers, 7);
        assert_eq!(merged.total_wall, Duration::from_millis(18));
    }

    #[test]
    fn merge_rejects_inconsistent_shards() {
        assert!(matches!(
            CampaignReport::merge(std::iter::empty()),
            Err(MergeError::Empty)
        ));
        let a = report(vec![cell("A", true, None)]);
        let mut renamed = report(vec![]);
        renamed.name = "other".to_string();
        assert!(matches!(
            CampaignReport::merge([a.clone(), renamed]),
            Err(MergeError::NameMismatch(..))
        ));
        let mut reseeded = report(vec![]);
        reseeded.base_seed = 8;
        assert!(matches!(
            CampaignReport::merge([a.clone(), reseeded]),
            Err(MergeError::SeedMismatch(7, 8))
        ));
        assert!(matches!(
            CampaignReport::merge([a.clone(), a]),
            Err(MergeError::DuplicateCell(0, 0, 0, 0))
        ));
        let mismatch = MergeError::DuplicateCell(0, 0, 0, 0);
        assert!(mismatch.to_string().contains("more than one shard"));
    }
}
