//! Aggregated campaign results.

use crate::cell::{CellResult, RequestTally};
use nvariant::ExecutionMetrics;
use nvariant_transform::TransformStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Everything a campaign run produced: per-cell results plus run metadata.
///
/// The deterministic content — every cell's spec, outcome, exchanges,
/// verdict — is fixed by the campaign definition and base seed alone;
/// [`canonical_text`](Self::canonical_text) serializes exactly that subset,
/// so runs at different worker counts compare byte-identically. Wall-clock
/// fields (`total_wall`, per-cell `wall`, `workers`) are measurement
/// metadata and stay out of the canonical form.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The campaign's name.
    pub name: String,
    /// The campaign's base seed.
    pub base_seed: u64,
    /// Worker threads the run used.
    pub workers: usize,
    /// Per-cell results, in canonical (config-major) order.
    pub cells: Vec<CellResult>,
    /// Wall-clock time of the whole run.
    pub total_wall: Duration,
}

impl CampaignReport {
    /// Assembles a report (used by [`Campaign::run`](crate::Campaign::run)).
    #[must_use]
    pub fn new(
        name: String,
        base_seed: u64,
        workers: usize,
        cells: Vec<CellResult>,
        total_wall: Duration,
    ) -> Self {
        CampaignReport {
            name,
            base_seed,
            workers,
            cells,
            total_wall,
        }
    }

    /// Fraction of cells in which the monitor raised an alarm.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        self.rate(|cell| cell.outcome.detected_attack())
    }

    /// Fraction of cells that ran to a normal, agreed exit.
    #[must_use]
    pub fn survival_rate(&self) -> f64 {
        self.rate(|cell| cell.outcome.exited_normally())
    }

    fn rate(&self, predicate: impl Fn(&CellResult) -> bool) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| predicate(c)).count() as f64 / self.cells.len() as f64
    }

    /// Response status counts over every cell.
    #[must_use]
    pub fn request_tally(&self) -> RequestTally {
        let mut tally = RequestTally::default();
        for cell in &self.cells {
            tally.absorb(&cell.tally());
        }
        tally
    }

    /// Execution counters summed over every cell.
    #[must_use]
    pub fn total_metrics(&self) -> ExecutionMetrics {
        let mut total = ExecutionMetrics::default();
        for cell in &self.cells {
            total.absorb(&cell.outcome.metrics);
        }
        total
    }

    /// The transformation change counts per configuration (one row per
    /// `config_index`, in matrix order: all cells of a configuration share
    /// one compiled artifact; labels may repeat when two configurations
    /// render the same label).
    #[must_use]
    pub fn transform_stats_by_config(&self) -> Vec<(String, TransformStats)> {
        let mut seen: Vec<usize> = Vec::new();
        let mut rows: Vec<(String, TransformStats)> = Vec::new();
        for cell in &self.cells {
            if !seen.contains(&cell.spec.config_index) {
                seen.push(cell.spec.config_index);
                rows.push((cell.spec.config_label.clone(), cell.transform_stats));
            }
        }
        rows
    }

    /// The judged cells whose observation disagreed with the prediction.
    #[must_use]
    pub fn verdict_mismatches(&self) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|cell| cell.verdict.as_ref().is_some_and(|v| !v.matches()))
            .collect()
    }

    /// Number of judged cells.
    #[must_use]
    pub fn judged_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.verdict.is_some()).count()
    }

    /// The cells belonging to one configuration label, in canonical order.
    /// Labels are not guaranteed unique across configurations (two `Custom`
    /// configs can render identically); use
    /// [`cells_for_config_index`](Self::cells_for_config_index) when the
    /// matrix position is known.
    #[must_use]
    pub fn cells_for_config<'a>(&'a self, label: &str) -> Vec<&'a CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.config_label == label)
            .collect()
    }

    /// The cells belonging to the configuration at `config_index` in the
    /// campaign's matrix, in canonical order.
    #[must_use]
    pub fn cells_for_config_index(&self, config_index: usize) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.config_index == config_index)
            .collect()
    }

    /// The cells belonging to one scenario label, in canonical order.
    #[must_use]
    pub fn cells_for_scenario<'a>(&'a self, label: &str) -> Vec<&'a CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.scenario_label == label)
            .collect()
    }

    /// The deterministic serialization of the run: campaign identity plus
    /// one canonical line per cell. Byte-identical across worker counts.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        let mut out = format!(
            "campaign={:?} seed={:#018x} cells={}\n",
            self.name,
            self.base_seed,
            self.cells.len()
        );
        for cell in &self.cells {
            out.push_str(&cell.canonical_line());
            out.push('\n');
        }
        out
    }

    /// A human-oriented summary: rates, totals and timing.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let tally = self.request_tally();
        let metrics = self.total_metrics();
        let slowest = self
            .cells
            .iter()
            .max_by_key(|c| c.wall)
            .map_or(Duration::ZERO, |c| c.wall);
        let mut out = format!(
            "campaign '{}': {} cells on {} workers in {:.1?} (slowest cell {:.1?})\n",
            self.name,
            self.cells.len(),
            self.workers,
            self.total_wall,
            slowest,
        );
        out.push_str(&format!(
            "  survival rate {:.1}%, detection rate {:.1}%\n",
            self.survival_rate() * 100.0,
            self.detection_rate() * 100.0
        ));
        out.push_str(&format!("  {tally}\n"));
        out.push_str(&format!("  {metrics}\n"));
        let judged = self.judged_cells();
        if judged > 0 {
            out.push_str(&format!(
                "  {} of {} judged cells match their prediction\n",
                judged - self.verdict_mismatches().len(),
                judged
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellSpec, CellVerdict};
    use crate::exchange::ServedRequest;
    use nvariant::SystemOutcome;

    fn cell(config: &str, ok: bool, verdict: Option<CellVerdict>) -> CellResult {
        CellResult {
            spec: CellSpec {
                config_index: usize::from(config.as_bytes()[0] - b'A'),
                scenario_index: 0,
                replicate: 0,
                config_label: config.to_string(),
                scenario_label: "s".to_string(),
                seed: 1,
            },
            outcome: SystemOutcome {
                exit_status: ok.then_some(0),
                alarm: None,
                fault: (!ok).then(|| "fault".to_string()),
                metrics: ExecutionMetrics {
                    variants: 1,
                    total_instructions: 100,
                    syscalls: 5,
                    monitor_checks: 0,
                    detection_calls: 0,
                    io_bytes: 10,
                },
            },
            exchanges: vec![ServedRequest {
                request: vec![],
                response: b"HTTP/1.1 200 OK\r\n\r\nok".to_vec(),
            }],
            transform_stats: TransformStats::default(),
            verdict,
            wall: Duration::from_millis(3),
        }
    }

    fn report(cells: Vec<CellResult>) -> CampaignReport {
        CampaignReport::new("t".to_string(), 7, 2, cells, Duration::from_millis(9))
    }

    #[test]
    fn rates_and_tallies_aggregate() {
        let report = report(vec![
            cell("A", true, None),
            cell("A", false, None),
            cell("B", true, None),
        ]);
        assert!((report.survival_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.detection_rate(), 0.0);
        assert_eq!(report.request_tally().ok, 3);
        assert_eq!(report.total_metrics().total_instructions, 300);
        assert_eq!(report.transform_stats_by_config().len(), 2);
        assert_eq!(report.cells_for_config("A").len(), 2);
        assert_eq!(report.cells_for_scenario("s").len(), 3);
        assert!(report.render_summary().contains("3 cells"));
    }

    #[test]
    fn aggregation_keys_on_config_index_not_label() {
        // Two distinct matrix positions that happen to render the same
        // label (possible with Custom configurations) must not conflate.
        let a = cell("A", true, None);
        let mut b = cell("A", true, None);
        b.spec.config_index = 25;
        b.transform_stats.uid_constants_reexpressed = 5;
        let report = report(vec![a, b]);
        let stats = report.transform_stats_by_config();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "A");
        assert_eq!(stats[1].0, "A");
        assert_eq!(stats[1].1.uid_constants_reexpressed, 5);
        assert_eq!(report.cells_for_config("A").len(), 2);
        assert_eq!(report.cells_for_config_index(25).len(), 1);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let report = report(vec![]);
        assert_eq!(report.survival_rate(), 0.0);
        assert_eq!(report.detection_rate(), 0.0);
    }

    #[test]
    fn mismatches_are_surfaced() {
        let hit = CellVerdict {
            observed: "x".to_string(),
            expected: "x".to_string(),
        };
        let miss = CellVerdict {
            observed: "x".to_string(),
            expected: "y".to_string(),
        };
        let report = report(vec![
            cell("A", true, Some(hit)),
            cell("A", true, Some(miss)),
            cell("A", true, None),
        ]);
        assert_eq!(report.judged_cells(), 2);
        assert_eq!(report.verdict_mismatches().len(), 1);
        assert!(report.render_summary().contains("1 of 2 judged"));
    }

    #[test]
    fn canonical_text_excludes_wall_clock() {
        let mut a = cell("A", true, None);
        let mut b = a.clone();
        b.wall = Duration::from_secs(1000);
        let mut ra = report(vec![a.clone()]);
        let mut rb = report(vec![b]);
        ra.total_wall = Duration::from_millis(1);
        rb.total_wall = Duration::from_secs(99);
        ra.workers = 1;
        rb.workers = 4;
        assert_eq!(ra.canonical_text(), rb.canonical_text());
        a.outcome.exit_status = Some(1);
        assert_ne!(report(vec![a]).canonical_text(), ra.canonical_text());
    }
}
