//! Aggregated campaign results: per-cell observations, summary statistics,
//! and the merge operation that reassembles sharded runs.

use crate::cell::{CellResult, RequestTally};
use nvariant::{CacheStats, ExecutionMetrics};
use nvariant_transform::TransformStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The dimensions of a plan's cell matrix: how many positions each axis
/// has.
///
/// Every [`CampaignReport`] records the shape of the plan it came from, so
/// [`CampaignReport::merge`] can enumerate the plan's expected coordinate
/// set and detect missing or foreign cells *without re-running the plan* —
/// the shape, together with the plan hash, is what turns merging from
/// "trust the shards" into validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanShape {
    /// Number of configurations on the deployment axis.
    pub configs: usize,
    /// Number of worlds on the environment axis (1 when the plan has only
    /// the implicit template world).
    pub worlds: usize,
    /// Number of scenarios.
    pub scenarios: usize,
    /// Replicates per (configuration, world, scenario) triple.
    pub replicates: usize,
}

impl PlanShape {
    /// Total number of cells in the matrix.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.configs * self.worlds * self.scenarios * self.replicates
    }

    /// Total number of cells, or `None` when the product overflows `usize`
    /// — possible only for hand-crafted or corrupted shapes, which is
    /// exactly when a parser-fed [`CampaignReport::merge`] must reject the
    /// shape instead of trusting it with arithmetic or allocations.
    #[must_use]
    pub fn checked_cell_count(&self) -> Option<usize> {
        self.configs
            .checked_mul(self.worlds)?
            .checked_mul(self.scenarios)?
            .checked_mul(self.replicates)
    }

    /// Whether the coordinates fall inside the matrix.
    #[must_use]
    pub fn contains(
        &self,
        (config, world, scenario, replicate): (usize, usize, usize, usize),
    ) -> bool {
        config < self.configs
            && world < self.worlds
            && scenario < self.scenarios
            && replicate < self.replicates
    }

    /// Every coordinate of the matrix, in canonical (config-major) order —
    /// the exact cell set a complete merge must cover. Allocates
    /// [`cell_count`](Self::cell_count) entries, so call it on shapes from
    /// trusted plans, not on shapes parsed from untrusted shard files.
    #[must_use]
    pub fn coordinates(&self) -> Vec<(usize, usize, usize, usize)> {
        let mut out = Vec::with_capacity(self.cell_count());
        for config in 0..self.configs {
            for world in 0..self.worlds {
                for scenario in 0..self.scenarios {
                    for replicate in 0..self.replicates {
                        out.push((config, world, scenario, replicate));
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for PlanShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{}x{}x{}",
            self.configs, self.worlds, self.scenarios, self.replicates
        )
    }
}

/// Why [`CampaignReport::merge`] refused to combine shard reports.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MergeError {
    /// No reports were supplied.
    Empty,
    /// Two shards claim to come from differently named plans.
    NameMismatch(String, String),
    /// Two shards claim to come from plans with different base seeds.
    SeedMismatch(u64, u64),
    /// Two shards agree on name and base seed but carry different plan
    /// hashes: their plans differ somewhere on the axes (configurations,
    /// worlds, scenarios or replicates), so their cells are not comparable.
    PlanMismatch {
        /// Plan hash the merge started from.
        merged: u64,
        /// The disagreeing shard's plan hash.
        shard: u64,
    },
    /// Two shards carry different matrix shapes (possible only for
    /// hand-assembled reports — plan-produced shards with equal hashes
    /// always agree on shape).
    ShapeMismatch(PlanShape, PlanShape),
    /// Two shards both contain the cell at these canonical coordinates
    /// (config, world, scenario, replicate) — they do not partition a plan.
    DuplicateCell(usize, usize, usize, usize),
    /// A shard contains a cell whose coordinates fall outside the plan's
    /// matrix shape.
    UnexpectedCell(usize, usize, usize, usize),
    /// The merged shards do not cover the plan's full cell matrix: the
    /// shard set is incomplete (a worker's report is missing or was
    /// truncated).
    MissingCells {
        /// The first uncovered coordinates, in canonical order (capped, so
        /// a near-empty merge of a huge plan stays cheap to report).
        missing: Vec<(usize, usize, usize, usize)>,
        /// How many cells the merged shards actually covered.
        covered: usize,
        /// How many cells the plan's matrix expects in total.
        expected: usize,
    },
    /// The reports declare a matrix shape whose cell count overflows —
    /// impossible for a real plan (its cell list exists in memory), so the
    /// shape can only come from a corrupted or adversarial shard file.
    ImplausibleShape(PlanShape),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard reports to merge"),
            MergeError::NameMismatch(a, b) => {
                write!(f, "shards come from different plans: {a:?} vs {b:?}")
            }
            MergeError::SeedMismatch(a, b) => {
                write!(f, "shards come from different base seeds: {a:#x} vs {b:#x}")
            }
            MergeError::PlanMismatch { merged, shard } => write!(
                f,
                "shards come from differently shaped plans (plan hash {merged:#018x} vs \
                 {shard:#018x}): same name and seed, but the axes differ"
            ),
            MergeError::ShapeMismatch(a, b) => {
                write!(f, "shards disagree on the matrix shape: {a} vs {b}")
            }
            MergeError::DuplicateCell(c, w, s, r) => write!(
                f,
                "cell (config {c}, world {w}, scenario {s}, replicate {r}) appears in more \
                 than one shard"
            ),
            MergeError::UnexpectedCell(c, w, s, r) => write!(
                f,
                "cell (config {c}, world {w}, scenario {s}, replicate {r}) falls outside \
                 the plan's matrix"
            ),
            MergeError::MissingCells {
                missing,
                covered,
                expected,
            } => {
                write!(
                    f,
                    "merged shards cover {covered} of {expected} cells; missing"
                )?;
                let shown = missing.len().min(8);
                for (i, (c, w, s, r)) in missing.iter().take(shown).enumerate() {
                    let sep = if i == 0 { ' ' } else { ',' };
                    write!(
                        f,
                        "{sep}(config {c}, world {w}, scenario {s}, replicate {r})"
                    )?;
                }
                let unshown = expected - covered - shown;
                if unshown > 0 {
                    write!(f, " and {unshown} more")?;
                }
                Ok(())
            }
            MergeError::ImplausibleShape(shape) => {
                write!(f, "shards declare an implausible matrix shape {shape}")
            }
        }
    }
}

impl std::error::Error for MergeError {}

/// Nearest-rank latency percentiles over per-cell wall-clock times.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WallPercentiles {
    /// Median per-cell wall time.
    pub p50: Duration,
    /// 95th-percentile per-cell wall time.
    pub p95: Duration,
    /// 99th-percentile per-cell wall time.
    pub p99: Duration,
}

impl fmt::Display for WallPercentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50 {:.1?}, p95 {:.1?}, p99 {:.1?}",
            self.p50, self.p95, self.p99
        )
    }
}

/// Everything a campaign run produced: per-cell results plus run metadata.
///
/// The deterministic content — every cell's spec, outcome, exchanges,
/// verdict — is fixed by the plan and base seed alone;
/// [`canonical_text`](Self::canonical_text) serializes exactly that subset,
/// so runs at different worker counts, and sharded runs reassembled with
/// [`merge`](Self::merge), compare byte-identically. Wall-clock fields
/// (`total_wall`, per-cell `wall`, `workers`) are measurement metadata and
/// stay out of the canonical form.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignReport {
    /// The plan's name.
    pub name: String,
    /// The plan's base seed.
    pub base_seed: u64,
    /// The canonical hash of the plan this report came from
    /// ([`CampaignPlan::plan_hash`](crate::CampaignPlan::plan_hash)):
    /// name, base seed and the full axes. [`merge`](Self::merge) refuses to
    /// combine reports with different hashes, so shards from
    /// differently-shaped plans can never silently blend into one report.
    pub plan_hash: u64,
    /// The dimensions of the plan's cell matrix, recorded so
    /// [`merge`](Self::merge) can validate coverage without the plan.
    pub shape: PlanShape,
    /// Worker threads the run used.
    pub workers: usize,
    /// Per-cell results, in canonical (config-major) order for whole runs,
    /// or in shard order for [`run_shard`](crate::CampaignPlan::run_shard)
    /// reports (merging restores canonical order).
    pub cells: Vec<CellResult>,
    /// Wall-clock time of the whole run (the sum of shard walls after a
    /// merge).
    pub total_wall: Duration,
    /// Cell-cache effectiveness counters of the run that produced this
    /// report, when it ran with a cache. Like `workers` and the wall-clock
    /// fields this is measurement metadata: it stays out of the canonical
    /// serialization *and* the shard interchange format (each process
    /// reports its own counters; [`merge`](Self::merge) sums the ones it is
    /// handed in-memory).
    pub cache: Option<CacheStats>,
}

impl CampaignReport {
    /// Assembles a report (used by [`CampaignPlan::run`](crate::CampaignPlan::run)).
    #[must_use]
    pub fn new(
        name: String,
        base_seed: u64,
        plan_hash: u64,
        shape: PlanShape,
        workers: usize,
        cells: Vec<CellResult>,
        total_wall: Duration,
    ) -> Self {
        CampaignReport {
            name,
            base_seed,
            plan_hash,
            shape,
            workers,
            cells,
            total_wall,
            cache: None,
        }
    }

    /// Attaches the cell-cache counters of the run that produced this
    /// report (shown by [`render_summary`](Self::render_summary)).
    #[must_use]
    pub fn with_cache_stats(mut self, stats: CacheStats) -> Self {
        self.cache = Some(stats);
        self
    }

    /// Reassembles shard reports into the report an unsharded run produces:
    /// cells are restored to canonical coordinate order, so the merged
    /// [`canonical_text`](Self::canonical_text) is byte-identical to the
    /// whole run's. Shard walls sum into `total_wall` (total compute spent),
    /// and `workers` records the widest shard.
    ///
    /// Merging is **validation-only** — it never re-runs cells. The shards'
    /// plan hashes gate the merge (shards from differently-shaped plans are
    /// rejected even when they agree on name and seed), and the merged cell
    /// set is checked against the plan's expected coordinate matrix, so an
    /// incomplete shard set (a lost or truncated worker report) fails with
    /// the exact missing coordinates instead of producing a
    /// wrong-but-plausible report.
    ///
    /// # Errors
    ///
    /// Returns a [`MergeError`] if no reports are supplied, the reports
    /// disagree on plan name, base seed, plan hash or shape, two reports
    /// contain the same cell, a cell falls outside the plan's matrix, or
    /// the merged cells do not cover the full matrix.
    pub fn merge(shards: impl IntoIterator<Item = CampaignReport>) -> Result<Self, MergeError> {
        let mut shards = shards.into_iter();
        let mut merged = shards.next().ok_or(MergeError::Empty)?;
        for shard in shards {
            if shard.name != merged.name {
                return Err(MergeError::NameMismatch(merged.name, shard.name));
            }
            if shard.base_seed != merged.base_seed {
                return Err(MergeError::SeedMismatch(merged.base_seed, shard.base_seed));
            }
            if shard.plan_hash != merged.plan_hash {
                return Err(MergeError::PlanMismatch {
                    merged: merged.plan_hash,
                    shard: shard.plan_hash,
                });
            }
            if shard.shape != merged.shape {
                return Err(MergeError::ShapeMismatch(merged.shape, shard.shape));
            }
            merged.workers = merged.workers.max(shard.workers);
            merged.total_wall += shard.total_wall;
            merged.cache = match (merged.cache, shard.cache) {
                (None, None) => None,
                (a, b) => Some(a.unwrap_or_default().merged(b.unwrap_or_default())),
            };
            merged.cells.extend(shard.cells);
        }
        merged.cells.sort_by_key(|cell| cell.spec.coordinates());
        for pair in merged.cells.windows(2) {
            if pair[0].spec.coordinates() == pair[1].spec.coordinates() {
                let (c, w, s, r) = pair[0].spec.coordinates();
                return Err(MergeError::DuplicateCell(c, w, s, r));
            }
        }
        for cell in &merged.cells {
            if !merged.shape.contains(cell.spec.coordinates()) {
                let (c, w, s, r) = cell.spec.coordinates();
                return Err(MergeError::UnexpectedCell(c, w, s, r));
            }
        }
        // The shape reaches this point straight from shard files, so treat
        // it as untrusted: a cell count that overflows cannot belong to any
        // plan that ever enumerated its cells in memory.
        let expected = merged
            .shape
            .checked_cell_count()
            .ok_or(MergeError::ImplausibleShape(merged.shape))?;
        // Cells are deduplicated and verified in-shape, so coverage reduces
        // to a count: the matrix is covered iff every expected coordinate
        // has a cell. On failure, walk the canonical coordinate order in
        // lockstep with the sorted cells to name the gaps — lazily and
        // capped, so even an absurd declared shape costs at most
        // cells + cap iterations and a tiny allocation.
        if merged.cells.len() != expected {
            const CAP: usize = 64;
            let mut cells = merged.cells.iter().map(|cell| cell.spec.coordinates());
            let mut next = cells.next();
            let mut missing = Vec::new();
            'matrix: for config in 0..merged.shape.configs {
                for world in 0..merged.shape.worlds {
                    for scenario in 0..merged.shape.scenarios {
                        for replicate in 0..merged.shape.replicates {
                            let coordinate = (config, world, scenario, replicate);
                            if next == Some(coordinate) {
                                next = cells.next();
                            } else {
                                missing.push(coordinate);
                                if missing.len() == CAP {
                                    break 'matrix;
                                }
                            }
                        }
                    }
                }
            }
            return Err(MergeError::MissingCells {
                missing,
                covered: merged.cells.len(),
                expected,
            });
        }
        Ok(merged)
    }

    /// Fraction of cells in which the monitor raised an alarm.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        self.rate(|cell| cell.outcome.detected_attack())
    }

    /// Fraction of cells that ran to a normal, agreed exit.
    #[must_use]
    pub fn survival_rate(&self) -> f64 {
        self.rate(|cell| cell.outcome.exited_normally())
    }

    fn rate(&self, predicate: impl Fn(&CellResult) -> bool) -> f64 {
        if self.cells.is_empty() {
            return 0.0;
        }
        self.cells.iter().filter(|c| predicate(c)).count() as f64 / self.cells.len() as f64
    }

    /// Response status counts over every cell.
    #[must_use]
    pub fn request_tally(&self) -> RequestTally {
        let mut tally = RequestTally::default();
        for cell in &self.cells {
            tally.absorb(&cell.tally());
        }
        tally
    }

    /// Execution counters summed over every cell.
    #[must_use]
    pub fn total_metrics(&self) -> ExecutionMetrics {
        let mut total = ExecutionMetrics::default();
        for cell in &self.cells {
            total.absorb(&cell.outcome.metrics);
        }
        total
    }

    /// Nearest-rank p50/p95/p99 of per-cell wall-clock times, or `None` for
    /// an empty report. Wall times are measurement metadata (they vary run
    /// to run), so the percentiles appear in
    /// [`render_summary`](Self::render_summary) but never in the canonical
    /// serialization.
    ///
    /// Quantiles come from the streaming
    /// [`LatencyHistogram`](crate::streaming::LatencyHistogram) sketch
    /// rather than a full sort, so each reported value is its bucket's
    /// lower bound — within
    /// [`QUANTILE_RELATIVE_ERROR`](crate::streaming::QUANTILE_RELATIVE_ERROR)
    /// (≤ 2%) of the exact order statistic — and sharded or streamed runs
    /// report identical percentiles to materialized ones.
    #[must_use]
    pub fn wall_percentiles(&self) -> Option<WallPercentiles> {
        let mut histogram = crate::streaming::LatencyHistogram::new();
        for cell in &self.cells {
            histogram.record(cell.wall);
        }
        histogram.percentiles()
    }

    /// The transformation change counts per configuration (one row per
    /// `config_index`, in matrix order; labels are already position-unique
    /// because the plan disambiguates duplicates).
    #[must_use]
    pub fn transform_stats_by_config(&self) -> Vec<(String, TransformStats)> {
        let mut seen: Vec<usize> = Vec::new();
        let mut rows: Vec<(String, TransformStats)> = Vec::new();
        for cell in &self.cells {
            if !seen.contains(&cell.spec.config_index) {
                seen.push(cell.spec.config_index);
                rows.push((cell.spec.config_label.clone(), cell.transform_stats));
            }
        }
        rows
    }

    /// The judged cells whose observation disagreed with the prediction.
    #[must_use]
    pub fn verdict_mismatches(&self) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|cell| cell.verdict.as_ref().is_some_and(|v| !v.matches()))
            .collect()
    }

    /// Number of judged cells.
    #[must_use]
    pub fn judged_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.verdict.is_some()).count()
    }

    /// The cells belonging to one configuration label, in canonical order.
    /// Plan-produced labels are position-unique (duplicate configuration
    /// labels are disambiguated with a `#<n>` suffix when the cell list is
    /// built), so a label names exactly one matrix position; use
    /// [`cells_for_config_index`](Self::cells_for_config_index) when the
    /// position itself is known.
    #[must_use]
    pub fn cells_for_config<'a>(&'a self, label: &str) -> Vec<&'a CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.config_label == label)
            .collect()
    }

    /// The cells belonging to the configuration at `config_index` in the
    /// plan's matrix, in canonical order.
    #[must_use]
    pub fn cells_for_config_index(&self, config_index: usize) -> Vec<&CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.config_index == config_index)
            .collect()
    }

    /// The cells belonging to one world label, in canonical order.
    #[must_use]
    pub fn cells_for_world<'a>(&'a self, label: &str) -> Vec<&'a CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.world_label == label)
            .collect()
    }

    /// The cells belonging to one scenario label, in canonical order.
    #[must_use]
    pub fn cells_for_scenario<'a>(&'a self, label: &str) -> Vec<&'a CellResult> {
        self.cells
            .iter()
            .filter(|c| c.spec.scenario_label == label)
            .collect()
    }

    /// The distinct world labels appearing in the report, in first-seen
    /// (canonical) order.
    #[must_use]
    pub fn world_labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = Vec::new();
        for cell in &self.cells {
            if !labels.contains(&cell.spec.world_label.as_str()) {
                labels.push(&cell.spec.world_label);
            }
        }
        labels
    }

    /// The deterministic serialization of the run: plan identity plus one
    /// canonical line per cell. Byte-identical across worker counts, and —
    /// for a merged set of shards partitioning a plan — byte-identical to
    /// the unsharded run.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        let mut out = format!(
            "campaign={:?} seed={:#018x} plan={:#018x} shape={} cells={}\n",
            self.name,
            self.base_seed,
            self.plan_hash,
            self.shape,
            self.cells.len()
        );
        for cell in &self.cells {
            out.push_str(&cell.canonical_line());
            out.push('\n');
        }
        out
    }

    /// The canonical per-cell stream: each cell's matrix coordinates
    /// (config, world, scenario, replicate) paired with its rendered
    /// canonical line, in report order (canonical order for whole and
    /// merged reports). This is the stream a fleet coordinator feeds to the
    /// logarithmic divergence finder: two reports of the same plan are
    /// byte-identical in [`canonical_text`](Self::canonical_text) iff their
    /// canonical cell streams are equal element-wise.
    pub fn canonical_cells(
        &self,
    ) -> impl Iterator<Item = ((usize, usize, usize, usize), String)> + '_ {
        self.cells
            .iter()
            .map(|cell| (cell.spec.coordinates(), cell.canonical_line()))
    }

    /// A human-oriented summary: rates, totals, latency percentiles and
    /// timing. Rendered through
    /// [`StreamingAggregator`](crate::streaming::StreamingAggregator)
    /// (see [`fold_aggregator`](Self::fold_aggregator)), so the streaming
    /// result path produces this text byte-for-byte without ever
    /// materializing the cells.
    #[must_use]
    pub fn render_summary(&self) -> String {
        self.fold_aggregator().render_summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellOutcome, CellSpec, CellVerdict};
    use crate::exchange::ServedRequest;

    fn cell(config: &str, ok: bool, verdict: Option<CellVerdict>) -> CellResult {
        CellResult {
            spec: CellSpec {
                config_index: usize::from(config.as_bytes()[0] - b'A'),
                world_index: 0,
                scenario_index: 0,
                replicate: 0,
                config_label: config.to_string(),
                world_label: "template".to_string(),
                scenario_label: "s".to_string(),
                seed: 1,
            },
            outcome: CellOutcome {
                exit_status: ok.then_some(0),
                alarm: None,
                fault: (!ok).then(|| "fault".to_string()),
                metrics: ExecutionMetrics {
                    variants: 1,
                    total_instructions: 100,
                    syscalls: 5,
                    monitor_checks: 0,
                    detection_calls: 0,
                    io_bytes: 10,
                },
            },
            exchanges: vec![ServedRequest {
                request: vec![],
                response: b"HTTP/1.1 200 OK\r\n\r\nok".to_vec(),
            }],
            transform_stats: TransformStats::default(),
            verdict,
            checked: None,
            wall: Duration::from_millis(3),
        }
    }

    /// A matrix shape wide enough for every hand-built cell these tests
    /// use: the config axis spans the A..Z labels, the replicate axis the
    /// wall-percentile test's 100 replicates.
    fn test_shape() -> PlanShape {
        PlanShape {
            configs: 26,
            worlds: 1,
            scenarios: 1,
            replicates: 101,
        }
    }

    fn report(cells: Vec<CellResult>) -> CampaignReport {
        CampaignReport::new(
            "t".to_string(),
            7,
            0xABCD,
            test_shape(),
            2,
            cells,
            Duration::from_millis(9),
        )
    }

    #[test]
    fn rates_and_tallies_aggregate() {
        let report = report(vec![
            cell("A", true, None),
            cell("A", false, None),
            cell("B", true, None),
        ]);
        assert!((report.survival_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(report.detection_rate(), 0.0);
        assert_eq!(report.request_tally().ok, 3);
        assert_eq!(report.total_metrics().total_instructions, 300);
        assert_eq!(report.transform_stats_by_config().len(), 2);
        assert_eq!(report.cells_for_config("A").len(), 2);
        assert_eq!(report.cells_for_scenario("s").len(), 3);
        assert_eq!(report.cells_for_world("template").len(), 3);
        assert_eq!(report.world_labels(), vec!["template"]);
        assert!(report.render_summary().contains("3 cells"));
    }

    #[test]
    fn aggregation_keys_on_config_index_not_label() {
        // Two distinct matrix positions: the plan would have disambiguated
        // their labels, but aggregation must key on the index regardless.
        let a = cell("A", true, None);
        let mut b = cell("A", true, None);
        b.spec.config_index = 25;
        b.spec.config_label = "A#1".to_string();
        b.transform_stats.uid_constants_reexpressed = 5;
        let report = report(vec![a, b]);
        let stats = report.transform_stats_by_config();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "A");
        assert_eq!(stats[1].0, "A#1");
        assert_eq!(stats[1].1.uid_constants_reexpressed, 5);
        // Disambiguated labels resolve to exactly one matrix position each.
        assert_eq!(report.cells_for_config("A").len(), 1);
        assert_eq!(report.cells_for_config("A#1").len(), 1);
        assert_eq!(report.cells_for_config_index(25).len(), 1);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let report = report(vec![]);
        assert_eq!(report.survival_rate(), 0.0);
        assert_eq!(report.detection_rate(), 0.0);
        assert_eq!(report.wall_percentiles(), None);
    }

    #[test]
    fn mismatches_are_surfaced() {
        let hit = CellVerdict {
            observed: "x".to_string(),
            expected: "x".to_string(),
        };
        let miss = CellVerdict {
            observed: "x".to_string(),
            expected: "y".to_string(),
        };
        let report = report(vec![
            cell("A", true, Some(hit)),
            cell("A", true, Some(miss)),
            cell("A", true, None),
        ]);
        assert_eq!(report.judged_cells(), 2);
        assert_eq!(report.verdict_mismatches().len(), 1);
        assert!(report.render_summary().contains("1 of 2 judged"));
    }

    #[test]
    fn canonical_text_excludes_wall_clock() {
        let mut a = cell("A", true, None);
        let mut b = a.clone();
        b.wall = Duration::from_secs(1000);
        let mut ra = report(vec![a.clone()]);
        let mut rb = report(vec![b]);
        ra.total_wall = Duration::from_millis(1);
        rb.total_wall = Duration::from_secs(99);
        ra.workers = 1;
        rb.workers = 4;
        assert_eq!(ra.canonical_text(), rb.canonical_text());
        a.outcome.exit_status = Some(1);
        assert_ne!(report(vec![a]).canonical_text(), ra.canonical_text());
    }

    #[test]
    fn canonical_cells_mirror_canonical_text() {
        let report = report(vec![cell("A", true, None), cell("B", false, None)]);
        let cells: Vec<_> = report.canonical_cells().collect();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].0, (0, 0, 0, 0));
        assert_eq!(cells[1].0, (1, 0, 0, 0));
        // The stream's lines are exactly the canonical text's cell lines.
        let text = report.canonical_text();
        let mut lines = text.lines().skip(1);
        for (_, line) in &cells {
            assert_eq!(lines.next(), Some(line.as_str()));
        }
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn wall_percentiles_use_nearest_rank() {
        let mut cells: Vec<CellResult> = (1..=100)
            .map(|ms| {
                let mut c = cell("A", true, None);
                c.spec.replicate = ms as usize;
                c.wall = Duration::from_millis(ms);
                c
            })
            .collect();
        // Shuffle-ish: percentiles must not depend on cell order.
        cells.reverse();
        let report = report(cells);
        let p = report.wall_percentiles().unwrap();
        // Sketch quantiles: each value is the nearest-rank order
        // statistic's bucket lower bound, within the documented ≤2%
        // relative error of the exact value.
        for (quantile, exact_ms) in [(p.p50, 50u64), (p.p95, 95), (p.p99, 99)] {
            let exact = Duration::from_millis(exact_ms);
            assert!(quantile <= exact, "{quantile:?} above exact {exact:?}");
            let error = exact.saturating_sub(quantile).as_secs_f64() / exact.as_secs_f64();
            assert!(error < 0.02, "{quantile:?} vs {exact:?}: error {error}");
        }
        assert!(report.render_summary().contains("per-cell wall p50"));

        // A single cell is its own percentile everywhere.
        let single = super::CampaignReport::new(
            "t".to_string(),
            7,
            0xABCD,
            test_shape(),
            1,
            vec![cell("A", true, None)],
            Duration::ZERO,
        );
        let p = single.wall_percentiles().unwrap();
        assert_eq!(p.p50, p.p99);
    }

    /// A report whose shape exactly covers `replicates` replicates of one
    /// (config 0, world 0, scenario 0) cell — the shape merge validates
    /// coverage against.
    fn shard(cells: Vec<CellResult>, replicates: usize) -> CampaignReport {
        let mut report = report(cells);
        report.shape = PlanShape {
            configs: 1,
            worlds: 1,
            scenarios: 1,
            replicates,
        };
        report
    }

    fn replicate_cell(replicate: usize) -> CellResult {
        let mut c = cell("A", true, None);
        c.spec.replicate = replicate;
        c
    }

    #[test]
    fn merge_restores_canonical_order_and_sums_walls() {
        let whole = shard(
            vec![replicate_cell(0), replicate_cell(1), replicate_cell(2)],
            3,
        );
        // Shards in round-robin order: {c0, c2} and {c1}.
        let shard_a = shard(vec![replicate_cell(0), replicate_cell(2)], 3);
        let mut shard_b = shard(vec![replicate_cell(1)], 3);
        shard_b.workers = 7;
        let merged = CampaignReport::merge([shard_a, shard_b]).unwrap();
        assert_eq!(merged.canonical_text(), whole.canonical_text());
        assert_eq!(merged.workers, 7);
        assert_eq!(merged.total_wall, Duration::from_millis(18));
    }

    #[test]
    fn merge_rejects_inconsistent_shards() {
        assert!(matches!(
            CampaignReport::merge(std::iter::empty()),
            Err(MergeError::Empty)
        ));
        let a = shard(vec![replicate_cell(0)], 1);
        let mut renamed = shard(vec![], 1);
        renamed.name = "other".to_string();
        assert!(matches!(
            CampaignReport::merge([a.clone(), renamed]),
            Err(MergeError::NameMismatch(..))
        ));
        let mut reseeded = shard(vec![], 1);
        reseeded.base_seed = 8;
        assert!(matches!(
            CampaignReport::merge([a.clone(), reseeded]),
            Err(MergeError::SeedMismatch(7, 8))
        ));
        assert!(matches!(
            CampaignReport::merge([a.clone(), a]),
            Err(MergeError::DuplicateCell(0, 0, 0, 0))
        ));
        let mismatch = MergeError::DuplicateCell(0, 0, 0, 0);
        assert!(mismatch.to_string().contains("more than one shard"));
    }

    #[test]
    fn merge_rejects_shards_from_differently_shaped_plans() {
        // Same name, same base seed — the pre-hash merge accepted this
        // pair and produced a wrong-but-plausible blended report. The plan
        // hash (covering the axes) now gates the merge.
        let a = shard(vec![replicate_cell(0)], 2);
        let mut b = shard(vec![replicate_cell(1)], 2);
        b.plan_hash = a.plan_hash ^ 1;
        assert_eq!(a.name, b.name);
        assert_eq!(a.base_seed, b.base_seed);
        let err = CampaignReport::merge([a.clone(), b]).unwrap_err();
        assert!(matches!(err, MergeError::PlanMismatch { .. }), "{err:?}");
        assert!(err.to_string().contains("differently shaped plans"));

        // Hand-assembled reports with equal hashes but disagreeing shapes
        // are still rejected.
        let mut c = shard(vec![replicate_cell(1)], 3);
        c.shape.replicates = 5;
        assert!(matches!(
            CampaignReport::merge([a, c]),
            Err(MergeError::ShapeMismatch(..))
        ));
    }

    #[test]
    fn merge_rejects_incomplete_shard_sets_naming_the_missing_cells() {
        // A strict subset of the plan's cells used to merge silently; now
        // the gap is named exactly.
        let a = shard(vec![replicate_cell(0)], 3);
        let b = shard(vec![replicate_cell(2)], 3);
        let err = CampaignReport::merge([a, b]).unwrap_err();
        match err {
            MergeError::MissingCells {
                missing,
                covered,
                expected,
            } => {
                assert_eq!(covered, 2);
                assert_eq!(expected, 3);
                assert_eq!(missing, vec![(0, 0, 0, 1)]);
            }
            other => panic!("expected MissingCells, got {other:?}"),
        }
    }

    #[test]
    fn merge_rejects_overflowing_shapes_without_enumerating_them() {
        // A shape straight out of a tampered shard file: the cell count
        // overflows usize, which no real plan can produce. The merge must
        // reject it cheaply instead of panicking or allocating.
        let mut a = shard(vec![replicate_cell(0)], 1);
        a.shape = PlanShape {
            configs: usize::MAX,
            worlds: 2,
            scenarios: 1,
            replicates: 1,
        };
        let err = CampaignReport::merge([a]).unwrap_err();
        assert!(matches!(err, MergeError::ImplausibleShape(_)), "{err:?}");
        assert!(err.to_string().contains("implausible"));

        // A huge-but-representable shape is reported as missing cells with
        // a capped listing — again without enumerating the whole matrix.
        let mut b = shard(vec![replicate_cell(0)], 1);
        b.shape = PlanShape {
            configs: 1,
            worlds: 1,
            scenarios: 1,
            replicates: usize::MAX,
        };
        match CampaignReport::merge([b]).unwrap_err() {
            MergeError::MissingCells {
                missing,
                covered,
                expected,
            } => {
                assert_eq!(covered, 1);
                assert_eq!(expected, usize::MAX);
                assert_eq!(missing.len(), 64);
                assert_eq!(missing[0], (0, 0, 0, 1));
            }
            other => panic!("expected MissingCells, got {other:?}"),
        }
    }

    #[test]
    fn merge_rejects_cells_outside_the_plan_matrix() {
        let a = shard(vec![replicate_cell(0), replicate_cell(1)], 1);
        assert!(matches!(
            CampaignReport::merge([a]),
            Err(MergeError::UnexpectedCell(0, 0, 0, 1))
        ));
    }

    #[test]
    fn missing_cells_display_caps_the_listing() {
        let missing: Vec<_> = (0..12).map(|r| (0, 0, 0, r)).collect();
        let rendered = MergeError::MissingCells {
            missing,
            covered: 8,
            expected: 20,
        }
        .to_string();
        assert!(rendered.contains("8 of 20 cells"), "{rendered}");
        // 20 expected - 8 covered - 8 shown = 4 unshown.
        assert!(rendered.contains("and 4 more"), "{rendered}");
    }

    #[test]
    fn plan_shape_enumerates_its_matrix() {
        let shape = PlanShape {
            configs: 2,
            worlds: 3,
            scenarios: 2,
            replicates: 2,
        };
        assert_eq!(shape.cell_count(), 24);
        let coords = shape.coordinates();
        assert_eq!(coords.len(), 24);
        assert_eq!(coords[0], (0, 0, 0, 0));
        assert_eq!(coords[23], (1, 2, 1, 1));
        // Canonical (config-major) order, matching `CellSpec::coordinates`
        // sort order.
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        assert_eq!(coords, sorted);
        assert!(shape.contains((1, 2, 1, 1)));
        assert!(!shape.contains((2, 0, 0, 0)));
        assert_eq!(shape.to_string(), "2x3x2x2");
    }
}
