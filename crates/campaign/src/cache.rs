//! Cross-process memoization of completed campaign cells.
//!
//! A cell's deterministic content is fixed by the plan and its matrix
//! coordinates alone (the determinism invariant the whole crate is built
//! on), so a completed [`CellResult`] can be reused by any later run of the
//! same plan — in this process or another. The cache key is exactly that
//! identity: the plan's canonical hash plus the cell's
//! `(config, world, scenario, replicate)` coordinates. The plan hash covers
//! every axis (configuration labels, deployment options and transform
//! counters, world labels, scenario labels/ports/judging), so flipping any
//! axis or transform option changes the hash and the old entries are simply
//! never looked up again — invalidation by construction, with no stale-entry
//! scanning.
//!
//! Entries are serialized with the shard interchange codec (a one-cell
//! [`CampaignReport`] in the v2 format): the codec that already proves
//! byte-identical reassembly of sharded runs is the cell serialization, so
//! a cache hit is bit-for-bit the cell a cold run would produce.
//!
//! Robustness contract, mirroring the artifact store's: a corrupted,
//! truncated or foreign entry is counted as an invalidation and recomputed
//! (then atomically overwritten) — never an error, never a crash. Writes go
//! through write-then-rename, so two processes racing on the same key can
//! never produce a torn entry; both write complete, identical bytes.

use crate::cell::{CellResult, CellSpec};
use crate::report::{CampaignReport, PlanShape};
use crate::shardio::ShardCursor;
use nvariant::store::{atomic_write_text, CacheCounters, CacheStats};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A handle on one plan's cell-cache directory:
/// `<root>/cells/<plan_hash>/cell-<config>-<world>-<scenario>-<replicate>.txt`.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    name: String,
    base_seed: u64,
    plan_hash: u64,
    shape: PlanShape,
    counters: CacheCounters,
}

impl CellCache {
    /// Opens the cache for one plan identity under `root`. Nothing is
    /// created on disk until the first [`insert`](Self::insert).
    #[must_use]
    pub fn open(
        root: &Path,
        name: impl Into<String>,
        base_seed: u64,
        plan_hash: u64,
        shape: PlanShape,
    ) -> Self {
        CellCache {
            dir: root.join("cells").join(format!("{plan_hash:016x}")),
            name: name.into(),
            base_seed,
            plan_hash,
            shape,
            counters: CacheCounters::default(),
        }
    }

    /// The on-disk path of one cell's entry (whether or not it exists).
    #[must_use]
    pub fn entry_path(&self, spec: &CellSpec) -> PathBuf {
        let (config, world, scenario, replicate) = spec.coordinates();
        self.dir
            .join(format!("cell-{config}-{world}-{scenario}-{replicate}.txt"))
    }

    /// Cache-effectiveness counters since this handle was opened.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.counters.snapshot()
    }

    /// Looks up the completed cell for `spec`. Returns `None` — counting a
    /// miss, or an invalidation for an entry that exists but is corrupt,
    /// truncated, keyed to a different plan hash, or describes a different
    /// cell — whenever the caller must recompute.
    ///
    /// The warm path streams the entry through a [`ShardCursor`] — header
    /// gate, one decoded cell, clean end marker — with no whole-shard
    /// `String` round trip; such hits are additionally counted as
    /// `streamed_hits` in [`CacheStats`].
    #[must_use]
    pub fn lookup(&self, spec: &CellSpec) -> Option<CellResult> {
        let path = self.entry_path(spec);
        let Ok(file) = std::fs::File::open(&path) else {
            self.counters.miss();
            return None;
        };
        // An entry that is present but unusable means recompute: the insert
        // after the recompute atomically replaces it.
        let Ok(mut cursor) = ShardCursor::new(std::io::BufReader::new(file)) else {
            self.counters.invalidation();
            return None;
        };
        if cursor.header().plan_hash != self.plan_hash {
            self.counters.invalidation();
            return None;
        }
        match cursor.next_cell() {
            // Exactly one cell followed by a clean end marker.
            Ok(Some(cell)) if cell.spec == *spec => {
                if let Ok(None) = cursor.next_cell() {
                    self.counters.streamed_hit();
                    Some(cell)
                } else {
                    self.counters.invalidation();
                    None
                }
            }
            _ => {
                self.counters.invalidation();
                None
            }
        }
    }

    /// Persists a completed cell as a one-cell shard file, atomically.
    /// Cache-layer I/O failures (full disk, read-only directory) are
    /// swallowed: a broken cache degrades to recomputing, never to failing
    /// the run.
    pub fn insert(&self, cell: &CellResult) {
        let path = self.entry_path(&cell.spec);
        let entry = CampaignReport::new(
            self.name.clone(),
            self.base_seed,
            self.plan_hash,
            self.shape,
            1,
            vec![cell.clone()],
            Duration::ZERO,
        );
        let _ = atomic_write_text(&path, &entry.to_shard_text());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellOutcome;
    use crate::exchange::ServedRequest;
    use nvariant::ExecutionMetrics;
    use nvariant_transform::TransformStats;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cellcache-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn shape() -> PlanShape {
        PlanShape {
            configs: 2,
            worlds: 1,
            scenarios: 1,
            replicates: 2,
        }
    }

    fn cell(config: usize, replicate: usize) -> CellResult {
        CellResult {
            spec: CellSpec {
                config_index: config,
                world_index: 0,
                scenario_index: 0,
                replicate,
                config_label: format!("config-{config}"),
                world_label: "template".to_string(),
                scenario_label: "ping".to_string(),
                seed: 0x5EED ^ ((config as u64) << 8) ^ replicate as u64,
            },
            outcome: CellOutcome {
                exit_status: Some(0),
                alarm: None,
                fault: None,
                metrics: ExecutionMetrics {
                    variants: 2,
                    total_instructions: 100,
                    syscalls: 4,
                    monitor_checks: 2,
                    detection_calls: 0,
                    io_bytes: 64,
                },
            },
            exchanges: vec![ServedRequest {
                request: b"GET / HTTP/1.0\r\n\r\n".to_vec(),
                response: b"HTTP/1.0 200 OK\r\n\r\nok".to_vec(),
            }],
            transform_stats: TransformStats::default(),
            verdict: None,
            checked: None,
            wall: Duration::from_millis(3),
        }
    }

    #[test]
    fn round_trips_cells_and_counts_hits_and_misses() {
        let root = scratch("roundtrip");
        let cache = CellCache::open(&root, "t", 7, 0xABCD, shape());
        let stored = cell(0, 1);
        assert!(cache.lookup(&stored.spec).is_none());
        cache.insert(&stored);
        let loaded = cache.lookup(&stored.spec).expect("entry readable");
        assert_eq!(loaded, stored);
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                invalidations: 0,
                streamed_hits: 1
            }
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn foreign_plan_hashes_and_mismatched_specs_are_invalidations() {
        let root = scratch("foreign");
        let stored = cell(0, 0);
        // Written under one plan hash, looked up under another: the file
        // exists at the same coordinates but proves a different plan.
        CellCache::open(&root, "t", 7, 0x1111, shape()).insert(&stored);
        let other = CellCache::open(&root, "t", 7, 0x2222, shape());
        // Different hash ⇒ different directory ⇒ plain miss.
        assert!(other.lookup(&stored.spec).is_none());
        assert_eq!(other.stats().misses, 1);

        // Same hash, but the entry body describes a different cell (e.g. a
        // hand-moved file): invalidation, not a bogus hit.
        let cache = CellCache::open(&root, "t", 7, 0x1111, shape());
        let moved = cache.entry_path(&cell(1, 0).spec);
        std::fs::create_dir_all(moved.parent().unwrap()).unwrap();
        std::fs::copy(cache.entry_path(&stored.spec), &moved).unwrap();
        assert!(cache.lookup(&cell(1, 0).spec).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_and_truncated_entries_fall_back_to_recompute() {
        let root = scratch("corrupt");
        let cache = CellCache::open(&root, "t", 7, 0xABCD, shape());
        let stored = cell(1, 1);
        cache.insert(&stored);
        let path = cache.entry_path(&stored.spec);
        let good = std::fs::read_to_string(&path).unwrap();
        for corruption in [
            String::new(),
            "garbage".to_string(),
            good[..good.len() / 2].to_string(),
            good.replace("exit 0", "exit zero"),
        ] {
            std::fs::write(&path, &corruption).unwrap();
            assert!(cache.lookup(&stored.spec).is_none(), "{corruption:?}");
            // Recompute-and-overwrite restores the entry.
            cache.insert(&stored);
            assert_eq!(cache.lookup(&stored.spec), Some(stored.clone()));
        }
        assert_eq!(cache.stats().invalidations, 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_writers_and_readers_never_observe_a_torn_entry() {
        let root = scratch("concurrent");
        let stored = cell(0, 0);
        let spec = stored.spec.clone();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let writer = CellCache::open(&root, "t", 7, 0xABCD, shape());
                    for _ in 0..50 {
                        writer.insert(&stored);
                    }
                });
            }
            scope.spawn(|| {
                let reader = CellCache::open(&root, "t", 7, 0xABCD, shape());
                for _ in 0..200 {
                    if let Some(loaded) = reader.lookup(&spec) {
                        assert_eq!(loaded, stored);
                    }
                }
                // Every observed entry parsed and matched: no invalidation
                // can have been counted, because writes are atomic.
                assert_eq!(reader.stats().invalidations, 0);
            });
        });
        let _ = std::fs::remove_dir_all(&root);
    }
}
