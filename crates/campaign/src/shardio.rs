//! A self-contained text codec for [`CampaignReport`]s, so shard runs in
//! separate processes (or machines) can hand their reports to a merging
//! coordinator as plain files.
//!
//! The workspace's vendored `serde` is a no-op stand-in (the build
//! environment has no registry access), so this module implements the
//! round-trip directly: a line-oriented format with Rust-`Debug`-quoted
//! strings and hex-encoded request/response payloads. The format is
//! loss-free for everything [`CampaignReport::canonical_text`] and
//! [`CampaignReport::render_summary`] consume, which is what the
//! shard-merge determinism contract needs:
//! `from_shard_text(to_shard_text(r))` reproduces `r`'s canonical text and
//! summaries byte-for-byte.

use crate::cell::{CellOutcome, CellResult, CellSpec, CellVerdict, CheckSummary};
use crate::exchange::ServedRequest;
use crate::report::{CampaignReport, PlanShape};
use nvariant::ExecutionMetrics;
use nvariant_transform::TransformStats;
use nvariant_types::hex::{hex_decode, hex_encode};
use std::fmt;
use std::time::Duration;

/// Format version 3: v2 plus the optional per-cell `checked` line carrying
/// a model-checking summary. Older files are rejected at the header line:
/// v1 predates the plan hashing that gates merges, and a v2 shard merged
/// into a checked campaign would silently drop the check column from the
/// canonical text, so both must be regenerated rather than reinterpreted.
const HEADER: &str = "nvariant-campaign-shard v3";

/// Why a shard file failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardParseError {
    /// 1-based line the error was detected on (0 for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ShardParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ShardParseError {}

fn quote(s: &str) -> String {
    format!("{s:?}")
}

/// Inverse of [`quote`]: parses a Rust-`Debug`-quoted string literal.
fn unquote(token: &str) -> Result<String, String> {
    let inner = token
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got {token}"))?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\'') => out.push('\''),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('0') => out.push('\0'),
            Some('u') => {
                let hex: String = chars
                    .by_ref()
                    .skip_while(|&c| c == '{')
                    .take_while(|&c| c != '}')
                    .collect();
                let code = u32::from_str_radix(&hex, 16)
                    .map_err(|_| format!("bad \\u escape in {token}"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad \\u escape in {token}"))?);
            }
            other => return Err(format!("bad escape \\{other:?} in {token}")),
        }
    }
    Ok(out)
}

fn render_cell(out: &mut String, cell: &CellResult) {
    let spec = &cell.spec;
    out.push_str(&format!(
        "cell {} {} {} {} {:#018x} {}\n",
        spec.config_index,
        spec.world_index,
        spec.scenario_index,
        spec.replicate,
        spec.seed,
        cell.wall.as_nanos(),
    ));
    out.push_str(&format!("config_label {}\n", quote(&spec.config_label)));
    out.push_str(&format!("world_label {}\n", quote(&spec.world_label)));
    out.push_str(&format!("scenario_label {}\n", quote(&spec.scenario_label)));
    out.push_str(&format!(
        "exit {}\n",
        cell.outcome
            .exit_status
            .map_or("-".to_string(), |s| s.to_string())
    ));
    if let Some(alarm) = &cell.outcome.alarm {
        out.push_str(&format!("alarm {}\n", quote(alarm)));
    }
    if let Some(fault) = &cell.outcome.fault {
        out.push_str(&format!("fault {}\n", quote(fault)));
    }
    let m = &cell.outcome.metrics;
    out.push_str(&format!(
        "metrics {} {} {} {} {} {}\n",
        m.variants,
        m.total_instructions,
        m.syscalls,
        m.monitor_checks,
        m.detection_calls,
        m.io_bytes
    ));
    let s = &cell.transform_stats;
    out.push_str(&format!(
        "stats {} {} {} {} {} {}\n",
        s.uid_constants_reexpressed,
        s.implicit_constants_made_explicit,
        s.single_value_exposures,
        s.comparison_exposures,
        s.conditional_checks,
        s.log_sinks_sanitized
    ));
    if let Some(verdict) = &cell.verdict {
        out.push_str(&format!("observed {}\n", quote(&verdict.observed)));
        out.push_str(&format!("expected {}\n", quote(&verdict.expected)));
    }
    if let Some(checked) = &cell.checked {
        // Property keys ("P1") and statuses ("pass"/"FAIL") are single
        // tokens by construction, so the line splits on spaces.
        out.push_str(&format!(
            "checked {} {} {} {}\n",
            checked.property, checked.status, checked.states, checked.depth
        ));
    }
    for exchange in &cell.exchanges {
        out.push_str(&format!(
            "exchange {} {}\n",
            hex_encode(&exchange.request),
            hex_encode(&exchange.response)
        ));
    }
    out.push_str("endcell\n");
}

/// The streaming dual of [`ShardCursor`]: writes the shard header eagerly,
/// then one cell block per [`push`](Self::push), so a producer's peak
/// memory is one cell — [`CampaignReport::to_shard_text`] semantics (which
/// is implemented over this writer) without holding the whole shard.
pub struct ShardWriter<W: std::io::Write> {
    writer: W,
    scratch: String,
}

impl<W: std::io::Write> ShardWriter<W> {
    /// Writes the header lines and returns the writer, ready for cells.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O errors.
    pub fn new(mut writer: W, header: &ShardHeader) -> std::io::Result<Self> {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("name {}\n", quote(&header.name)));
        out.push_str(&format!("base_seed {:#018x}\n", header.base_seed));
        out.push_str(&format!("plan_hash {:#018x}\n", header.plan_hash));
        out.push_str(&format!(
            "shape {} {} {} {}\n",
            header.shape.configs,
            header.shape.worlds,
            header.shape.scenarios,
            header.shape.replicates
        ));
        out.push_str(&format!("workers {}\n", header.workers));
        out.push_str(&format!(
            "total_wall_nanos {}\n",
            header.total_wall.as_nanos()
        ));
        writer.write_all(out.as_bytes())?;
        Ok(ShardWriter {
            writer,
            scratch: String::new(),
        })
    }

    /// Appends one cell block. Cells must be pushed in the producing run's
    /// canonical order for the file to merge cleanly.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O errors.
    pub fn push(&mut self, cell: &CellResult) -> std::io::Result<()> {
        self.scratch.clear();
        render_cell(&mut self.scratch, cell);
        self.writer.write_all(self.scratch.as_bytes())
    }

    /// Writes the end-of-shard trailer, flushes, and returns the
    /// underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's I/O errors.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.writer.write_all(b"end\n")?;
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl CampaignReport {
    /// Serializes the report to the shard interchange text format.
    #[must_use]
    pub fn to_shard_text(&self) -> String {
        let header = ShardHeader {
            name: self.name.clone(),
            base_seed: self.base_seed,
            plan_hash: self.plan_hash,
            shape: self.shape,
            workers: self.workers,
            total_wall: self.total_wall,
        };
        let mut writer =
            ShardWriter::new(Vec::new(), &header).expect("writing to a Vec cannot fail");
        for cell in &self.cells {
            writer.push(cell).expect("writing to a Vec cannot fail");
        }
        let bytes = writer.finish().expect("writing to a Vec cannot fail");
        String::from_utf8(bytes).expect("shard text is UTF-8 by construction")
    }

    /// Parses a report from the shard interchange text format.
    ///
    /// This is the materializing convenience wrapper over [`ShardCursor`]:
    /// it drains the cursor into a cell vector. Callers that only need to
    /// fold over the cells (aggregation, merging, divergence probing)
    /// should drive a [`ShardCursor`] directly and never hold more than one
    /// cell in memory.
    ///
    /// # Errors
    ///
    /// Returns a [`ShardParseError`] naming the offending line if the text
    /// is not a well-formed shard file.
    pub fn from_shard_text(text: &str) -> Result<Self, ShardParseError> {
        let mut cursor = ShardCursor::new(text.as_bytes())?;
        let mut cells = Vec::new();
        while let Some(cell) = cursor.next_cell()? {
            cells.push(cell);
        }
        let header = cursor.into_header();
        Ok(CampaignReport::new(
            header.name,
            header.base_seed,
            header.plan_hash,
            header.shape,
            header.workers,
            cells,
            header.total_wall,
        ))
    }
}

/// The per-file metadata of a shard: everything
/// [`CampaignReport::to_shard_text`] writes before the first cell block. A
/// [`ShardCursor`] parses it eagerly, so a merging coordinator can gate on
/// the plan hash and shape *before* streaming a single cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardHeader {
    /// The plan's name.
    pub name: String,
    /// The plan's base seed.
    pub base_seed: u64,
    /// The canonical plan hash the shard claims to come from.
    pub plan_hash: u64,
    /// The plan's matrix shape.
    pub shape: PlanShape,
    /// Worker threads the producing run used.
    pub workers: usize,
    /// Wall-clock time of the producing run.
    pub total_wall: Duration,
}

/// A streaming reader over the shard interchange format: parses the header
/// eagerly, then yields one [`CellResult`] at a time from any [`BufRead`]
/// source (a file, a retrieved byte stream, an in-memory slice), so a
/// consumer's peak memory is one cell — independent of shard size.
///
/// The grammar, error messages and 1-based error line numbers are exactly
/// those of [`CampaignReport::from_shard_text`], which is implemented over
/// this cursor.
pub struct ShardCursor<R> {
    reader: R,
    current: usize,
    header: ShardHeader,
    done: bool,
}

impl ShardCursor<std::io::BufReader<std::fs::File>> {
    /// Opens a shard file for streaming. The header is parsed before this
    /// returns; an unopenable file is reported as a parse error at line 0.
    ///
    /// # Errors
    ///
    /// Returns a [`ShardParseError`] if the file cannot be opened or its
    /// header is malformed.
    pub fn open(path: &std::path::Path) -> Result<Self, ShardParseError> {
        let file = std::fs::File::open(path).map_err(|e| ShardParseError {
            line: 0,
            message: format!("cannot open shard file {}: {e}", path.display()),
        })?;
        ShardCursor::new(std::io::BufReader::new(file))
    }
}

impl<R: std::io::BufRead> ShardCursor<R> {
    /// Wraps a reader and parses the shard header.
    ///
    /// # Errors
    ///
    /// Returns a [`ShardParseError`] if the header is malformed or the
    /// reader fails.
    pub fn new(reader: R) -> Result<Self, ShardParseError> {
        let mut cursor = ShardCursor {
            reader,
            current: 0,
            header: ShardHeader {
                name: String::new(),
                base_seed: 0,
                plan_hash: 0,
                shape: PlanShape {
                    configs: 0,
                    worlds: 0,
                    scenarios: 0,
                    replicates: 0,
                },
                workers: 0,
                total_wall: Duration::ZERO,
            },
            done: false,
        };
        cursor.header = cursor.parse_header()?;
        Ok(cursor)
    }

    /// The shard's header (available before any cell is read).
    #[must_use]
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// Consumes the cursor, returning the header.
    #[must_use]
    pub fn into_header(self) -> ShardHeader {
        self.header
    }

    /// Parses the next cell block, or returns `None` at the shard's `end`
    /// marker. Reaching the end validates the file's tail exactly like the
    /// whole-file parser: trailing blank lines are tolerated, any other
    /// trailing content is rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`ShardParseError`] naming the offending line on malformed
    /// input, truncation, or reader failure.
    pub fn next_cell(&mut self) -> Result<Option<CellResult>, ShardParseError> {
        if self.done {
            return Ok(None);
        }
        let line = self.next_line()?;
        if line == "end" {
            // "end" must really end the file: trailing content would mean a
            // concatenated or corrupted shard whose tail silently vanishes.
            // Blank lines are tolerated — an extra trailing newline from an
            // editor or a text-mode transfer doesn't change the report.
            while let Some(line) = self.read_raw_line()? {
                if line.is_empty() {
                    continue;
                }
                return self.fail(format!("unexpected content after \"end\": {line:?}"));
            }
            self.done = true;
            return Ok(None);
        }
        let Some(rest) = line.strip_prefix("cell ") else {
            return self.fail(format!("expected \"cell\" or \"end\", got {line:?}"));
        };
        self.parse_cell(rest).map(Some)
    }

    fn fail<T>(&self, message: impl Into<String>) -> Result<T, ShardParseError> {
        Err(ShardParseError {
            line: self.current,
            message: message.into(),
        })
    }

    /// Reads one line (without its terminator), or `None` at end of input.
    fn read_raw_line(&mut self) -> Result<Option<String>, ShardParseError> {
        let mut buf = String::new();
        match self.reader.read_line(&mut buf) {
            Ok(0) => Ok(None),
            Ok(_) => {
                if buf.ends_with('\n') {
                    buf.pop();
                    if buf.ends_with('\r') {
                        buf.pop();
                    }
                }
                self.current += 1;
                Ok(Some(buf))
            }
            Err(e) => Err(ShardParseError {
                line: self.current + 1,
                message: format!("I/O error reading shard: {e}"),
            }),
        }
    }

    fn next_line(&mut self) -> Result<String, ShardParseError> {
        if let Some(line) = self.read_raw_line()? {
            Ok(line)
        } else {
            self.current = 0;
            Err(ShardParseError {
                line: 0,
                message: "unexpected end of shard file".to_string(),
            })
        }
    }

    /// Consumes a `key value...` line, returning the value part.
    fn expect_field(&mut self, key: &str) -> Result<String, ShardParseError> {
        let line = self.next_line()?;
        match line.strip_prefix(key).and_then(|r| r.strip_prefix(' ')) {
            Some(rest) => Ok(rest.to_string()),
            None => self.fail(format!("expected {key:?} field, got {line:?}")),
        }
    }

    fn parse_number<T: std::str::FromStr>(&self, token: &str) -> Result<T, ShardParseError> {
        token.parse::<T>().map_err(|_| ShardParseError {
            line: self.current,
            message: format!("expected a number, got {token:?}"),
        })
    }

    fn parse_seed(&self, token: &str) -> Result<u64, ShardParseError> {
        token
            .strip_prefix("0x")
            .and_then(|hex| u64::from_str_radix(hex, 16).ok())
            .ok_or_else(|| ShardParseError {
                line: self.current,
                message: format!("expected 0x-prefixed seed, got {token:?}"),
            })
    }

    fn parse_quoted(&self, token: &str) -> Result<String, ShardParseError> {
        unquote(token).map_err(|message| ShardParseError {
            line: self.current,
            message,
        })
    }

    fn parse_header(&mut self) -> Result<ShardHeader, ShardParseError> {
        let header = self.next_line()?;
        if header != HEADER {
            return self.fail(format!("expected {HEADER:?}, got {header:?}"));
        }
        let name = {
            let token = self.expect_field("name")?;
            self.parse_quoted(&token)?
        };
        let base_seed = {
            let token = self.expect_field("base_seed")?;
            self.parse_seed(&token)?
        };
        let plan_hash = {
            let token = self.expect_field("plan_hash")?;
            self.parse_seed(&token)?
        };
        let shape = {
            let field = self.expect_field("shape")?;
            let tokens: Vec<&str> = field.split(' ').collect();
            if tokens.len() != 4 {
                return self.fail(format!(
                    "shape needs 4 axis sizes (configs, worlds, scenarios, replicates), got {}",
                    tokens.len()
                ));
            }
            PlanShape {
                configs: self.parse_number(tokens[0])?,
                worlds: self.parse_number(tokens[1])?,
                scenarios: self.parse_number(tokens[2])?,
                replicates: self.parse_number(tokens[3])?,
            }
        };
        let workers = {
            let token = self.expect_field("workers")?;
            self.parse_number::<usize>(&token)?
        };
        let total_wall = {
            let token = self.expect_field("total_wall_nanos")?;
            Duration::from_nanos(self.parse_number::<u64>(&token)?)
        };
        Ok(ShardHeader {
            name,
            base_seed,
            plan_hash,
            shape,
            workers,
            total_wall,
        })
    }

    fn parse_cell(&mut self, coordinates: &str) -> Result<CellResult, ShardParseError> {
        let tokens: Vec<&str> = coordinates.split(' ').collect();
        if tokens.len() != 6 {
            return self.fail(format!(
                "cell line needs 6 fields (coordinates, seed, wall), got {}",
                tokens.len()
            ));
        }
        let mut spec = CellSpec {
            config_index: self.parse_number(tokens[0])?,
            world_index: self.parse_number(tokens[1])?,
            scenario_index: self.parse_number(tokens[2])?,
            replicate: self.parse_number(tokens[3])?,
            config_label: String::new(),
            world_label: String::new(),
            scenario_label: String::new(),
            seed: self.parse_seed(tokens[4])?,
        };
        let wall = Duration::from_nanos(self.parse_number::<u64>(tokens[5])?);
        spec.config_label = {
            let token = self.expect_field("config_label")?;
            self.parse_quoted(&token)?
        };
        spec.world_label = {
            let token = self.expect_field("world_label")?;
            self.parse_quoted(&token)?
        };
        spec.scenario_label = {
            let token = self.expect_field("scenario_label")?;
            self.parse_quoted(&token)?
        };
        let exit_status = {
            let token = self.expect_field("exit")?;
            if token == "-" {
                None
            } else {
                Some(self.parse_number::<i32>(&token)?)
            }
        };

        // The optional and repeated trailing fields, in fixed order:
        // alarm? fault? metrics stats (observed expected)? checked?
        // exchange* endcell.
        let mut alarm = None;
        let mut fault = None;
        let mut line = self.next_line()?;
        if let Some(token) = line.strip_prefix("alarm ") {
            alarm = Some(self.parse_quoted(token)?);
            line = self.next_line()?;
        }
        if let Some(token) = line.strip_prefix("fault ") {
            fault = Some(self.parse_quoted(token)?);
            line = self.next_line()?;
        }
        let Some(metrics_rest) = line.strip_prefix("metrics ") else {
            return self.fail(format!("expected \"metrics\" field, got {line:?}"));
        };
        let m: Vec<&str> = metrics_rest.split(' ').collect();
        if m.len() != 6 {
            return self.fail(format!("metrics needs 6 counters, got {}", m.len()));
        }
        let metrics = ExecutionMetrics {
            variants: self.parse_number(m[0])?,
            total_instructions: self.parse_number(m[1])?,
            syscalls: self.parse_number(m[2])?,
            monitor_checks: self.parse_number(m[3])?,
            detection_calls: self.parse_number(m[4])?,
            io_bytes: self.parse_number(m[5])?,
        };
        let stats_field = self.expect_field("stats")?;
        let s: Vec<&str> = stats_field.split(' ').collect();
        if s.len() != 6 {
            return self.fail(format!("stats needs 6 counters, got {}", s.len()));
        }
        let transform_stats = TransformStats {
            uid_constants_reexpressed: self.parse_number(s[0])?,
            implicit_constants_made_explicit: self.parse_number(s[1])?,
            single_value_exposures: self.parse_number(s[2])?,
            comparison_exposures: self.parse_number(s[3])?,
            conditional_checks: self.parse_number(s[4])?,
            log_sinks_sanitized: self.parse_number(s[5])?,
        };

        let mut verdict = None;
        let mut exchanges = Vec::new();
        let mut line = self.next_line()?;
        if let Some(token) = line.strip_prefix("observed ") {
            let observed = self.parse_quoted(token)?;
            let expected_token = self.expect_field("expected")?;
            let expected = self.parse_quoted(&expected_token)?;
            verdict = Some(CellVerdict { observed, expected });
            line = self.next_line()?;
        }
        let mut checked = None;
        if let Some(rest) = line.strip_prefix("checked ") {
            let c: Vec<&str> = rest.split(' ').collect();
            if c.len() != 4 {
                return self.fail(format!(
                    "checked needs 4 fields (property, status, states, depth), got {}",
                    c.len()
                ));
            }
            checked = Some(CheckSummary {
                property: c[0].to_string(),
                status: c[1].to_string(),
                states: self.parse_number(c[2])?,
                depth: self.parse_number(c[3])?,
            });
            line = self.next_line()?;
        }
        loop {
            if line == "endcell" {
                break;
            }
            let Some(rest) = line.strip_prefix("exchange ") else {
                return self.fail(format!(
                    "expected \"exchange\" or \"endcell\", got {line:?}"
                ));
            };
            let Some((request, response)) = rest.split_once(' ') else {
                return self.fail("exchange needs request and response payloads");
            };
            let decode = |token: &str| {
                hex_decode(token).map_err(|message| ShardParseError {
                    line: self.current,
                    message,
                })
            };
            exchanges.push(ServedRequest {
                request: decode(request)?,
                response: decode(response)?,
            });
            line = self.next_line()?;
        }

        Ok(CellResult {
            spec,
            outcome: CellOutcome {
                exit_status,
                alarm,
                fault,
                metrics,
            },
            exchanges,
            transform_stats,
            verdict,
            checked,
            wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CampaignReport {
        let cell = |replicate: usize, alarmed: bool| CellResult {
            spec: CellSpec {
                config_index: 1,
                world_index: 2,
                scenario_index: 0,
                replicate,
                config_label: "2-Variant \"UID\"".to_string(),
                world_label: "alt-docroot".to_string(),
                scenario_label: "uid-overflow\nline2".to_string(),
                seed: 0xDEAD_BEEF_0000_0001,
            },
            outcome: CellOutcome {
                exit_status: (!alarmed).then_some(0),
                alarm: alarmed
                    .then(|| "ALARM at synchronization point 7: values [0, 1]".to_string()),
                fault: None,
                metrics: ExecutionMetrics {
                    variants: 2,
                    total_instructions: 12345,
                    syscalls: 67,
                    monitor_checks: 89,
                    detection_calls: 4,
                    io_bytes: 4096,
                },
            },
            exchanges: vec![
                ServedRequest {
                    request: b"GET / HTTP/1.0\r\n\r\n".to_vec(),
                    response: b"HTTP/1.0 200 OK\r\n\r\nok".to_vec(),
                },
                ServedRequest {
                    request: vec![0, 255, 128],
                    response: Vec::new(),
                },
            ],
            transform_stats: TransformStats {
                uid_constants_reexpressed: 5,
                implicit_constants_made_explicit: 1,
                single_value_exposures: 2,
                comparison_exposures: 4,
                conditional_checks: 3,
                log_sinks_sanitized: 1,
            },
            verdict: alarmed.then(|| CellVerdict {
                observed: "detected".to_string(),
                expected: "detected".to_string(),
            }),
            checked: alarmed.then(|| CheckSummary {
                property: "P1".to_string(),
                status: "pass".to_string(),
                states: 1234,
                depth: 24,
            }),
            wall: Duration::from_micros(1234),
        };
        CampaignReport::new(
            "round \"trip\"".to_string(),
            0x5EED,
            0xFEED_FACE_CAFE_F00D,
            PlanShape {
                configs: 2,
                worlds: 3,
                scenarios: 1,
                replicates: 2,
            },
            4,
            vec![cell(0, false), cell(1, true)],
            Duration::from_millis(99),
        )
    }

    #[test]
    fn round_trip_preserves_canonical_text_and_summaries() {
        let report = sample_report();
        let text = report.to_shard_text();
        let parsed = CampaignReport::from_shard_text(&text).unwrap();
        assert_eq!(parsed.canonical_text(), report.canonical_text());
        assert_eq!(parsed.render_summary(), report.render_summary());
        assert_eq!(parsed.cells, report.cells);
        assert_eq!(parsed.workers, report.workers);
        assert_eq!(parsed.total_wall, report.total_wall);
        // The merge-gating identity survives the trip.
        assert_eq!(parsed.plan_hash, report.plan_hash);
        assert_eq!(parsed.shape, report.shape);
        // And the round trip is a fixed point.
        assert_eq!(parsed.to_shard_text(), text);
    }

    #[test]
    fn older_shard_files_are_rejected_at_the_header() {
        // v1 predates plan hashing; v2 predates the checked column. Either
        // merged into a current campaign would silently lose information.
        for old in ["shard v1", "shard v2"] {
            let text = sample_report().to_shard_text().replace("shard v3", old);
            let err = CampaignReport::from_shard_text(&text).unwrap_err();
            assert_eq!(err.line, 1);
            assert!(err.message.contains("v3"), "{err}");
        }
    }

    #[test]
    fn quoting_round_trips_awkward_strings() {
        for s in [
            "",
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab and nul\0",
            "unicode: héllo → 世界",
        ] {
            assert_eq!(unquote(&quote(s)).unwrap(), s, "{s:?}");
        }
        assert!(unquote("no quotes").is_err());
        assert!(unquote("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn hex_round_trips_payloads() {
        for payload in [vec![], vec![0u8], vec![0xff, 0x00, 0x7f], b"GET /".to_vec()] {
            assert_eq!(hex_decode(&hex_encode(&payload)).unwrap(), payload);
        }
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        // The encoder emits lowercase, but uppercase input (accepted by the
        // format since v1) still decodes.
        assert_eq!(hex_decode("AbFf").unwrap(), vec![0xab, 0xff]);
    }

    #[test]
    fn malformed_inputs_name_the_offending_line() {
        let err = CampaignReport::from_shard_text("not a shard file").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("line 1"));

        let report = sample_report();
        let mut lines: Vec<String> = report.to_shard_text().lines().map(String::from).collect();
        // Corrupt the metrics line of the first cell.
        let metrics_line = lines.iter().position(|l| l.starts_with("metrics")).unwrap();
        lines[metrics_line] = "metrics 1 2".to_string();
        let err = CampaignReport::from_shard_text(&lines.join("\n")).unwrap_err();
        assert_eq!(err.line, metrics_line + 1);
        assert!(err.message.contains("6 counters"));

        // Truncated file.
        let err = CampaignReport::from_shard_text(HEADER).unwrap_err();
        assert!(err.message.contains("unexpected end"));

        // A duplicated metrics line is caught where "stats" was expected.
        let mut lines: Vec<String> = report.to_shard_text().lines().map(String::from).collect();
        let metrics_line = lines.iter().position(|l| l.starts_with("metrics")).unwrap();
        lines.insert(metrics_line + 1, lines[metrics_line].clone());
        let err = CampaignReport::from_shard_text(&lines.join("\n")).unwrap_err();
        assert_eq!(err.line, metrics_line + 2);
        assert!(err.message.contains("stats"), "{err}");

        // Corrupted hex names the exchange line, and non-ASCII corruption
        // (which would split a UTF-8 char under byte slicing) reports
        // instead of panicking.
        for corruption in ["zz", "é!"] {
            let mut lines: Vec<String> = report.to_shard_text().lines().map(String::from).collect();
            let exchange_line = lines
                .iter()
                .position(|l| l.starts_with("exchange"))
                .unwrap();
            lines[exchange_line] = {
                let line = &lines[exchange_line];
                format!("{}{corruption}", &line[..line.len() - 2])
            };
            let err = CampaignReport::from_shard_text(&lines.join("\n")).unwrap_err();
            assert_eq!(err.line, exchange_line + 1, "{corruption}: {err}");
            assert!(err.message.contains("hex"), "{corruption}: {err}");
        }
    }

    #[test]
    fn trailing_content_after_end_is_rejected() {
        // Two concatenated shard files must not silently parse as the
        // first one.
        let text = sample_report().to_shard_text();
        let doubled = format!("{text}{text}");
        let err = CampaignReport::from_shard_text(&doubled).unwrap_err();
        assert_eq!(err.line, text.lines().count() + 1);
        assert!(err.message.contains("after \"end\""), "{err}");
        // But harmless trailing blank lines (an editor's or a text-mode
        // transfer's extra newlines) still parse.
        let padded = format!("{text}\n\n");
        let parsed = CampaignReport::from_shard_text(&padded).unwrap();
        assert_eq!(parsed.to_shard_text(), text);
    }

    #[test]
    fn truncation_at_any_line_boundary_is_a_clean_error() {
        let text = sample_report().to_shard_text();
        let total = text.lines().count();
        for keep in 0..total {
            let truncated = text.lines().take(keep).fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
            let err = CampaignReport::from_shard_text(&truncated).unwrap_err();
            assert!(
                err.line <= keep + 1,
                "kept {keep} lines but error names line {}",
                err.line
            );
        }
    }

    #[test]
    fn empty_report_round_trips() {
        let report = CampaignReport::new(
            "empty".to_string(),
            1,
            2,
            PlanShape {
                configs: 0,
                worlds: 1,
                scenarios: 0,
                replicates: 1,
            },
            1,
            vec![],
            Duration::ZERO,
        );
        let parsed = CampaignReport::from_shard_text(&report.to_shard_text()).unwrap();
        assert_eq!(parsed.canonical_text(), report.canonical_text());
        assert!(parsed.cells.is_empty());
    }
}
