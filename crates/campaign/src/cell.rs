//! One cell of a campaign matrix: its coordinates, its observed result,
//! and the derived per-cell summaries reports aggregate over.

use crate::exchange::ServedRequest;
use nvariant::SystemOutcome;
use nvariant_transform::TransformStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The coordinates and derived seed of one campaign cell.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Index of the configuration in the campaign's config list.
    pub config_index: usize,
    /// Index of the scenario in the campaign's scenario list.
    pub scenario_index: usize,
    /// Replicate number (0-based) of this (config, scenario) pair.
    pub replicate: usize,
    /// Label of the configuration.
    pub config_label: String,
    /// Label of the scenario.
    pub scenario_label: String,
    /// The deterministic seed this cell runs under.
    pub seed: u64,
}

/// A scenario's classification of a cell, alongside the prediction it was
/// expected to match (e.g. an attack's observed vs. predicted result).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellVerdict {
    /// What was observed.
    pub observed: String,
    /// What the scenario predicted.
    pub expected: String,
}

impl CellVerdict {
    /// Returns `true` if the observation matches the prediction.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.observed == self.expected
    }
}

/// Response status counts over a batch of served requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTally {
    /// Total request/response pairs observed.
    pub total: usize,
    /// 200 responses.
    pub ok: usize,
    /// 403 responses.
    pub forbidden: usize,
    /// 404 responses.
    pub not_found: usize,
    /// Anything else (other statuses, empty or malformed responses).
    pub other: usize,
}

impl RequestTally {
    /// Tallies a batch of served requests.
    #[must_use]
    pub fn from_exchanges(exchanges: &[ServedRequest]) -> Self {
        let mut tally = RequestTally {
            total: exchanges.len(),
            ..RequestTally::default()
        };
        for exchange in exchanges {
            match exchange.status_code() {
                Some(200) => tally.ok += 1,
                Some(403) => tally.forbidden += 1,
                Some(404) => tally.not_found += 1,
                _ => tally.other += 1,
            }
        }
        tally
    }

    /// Merges another tally into this one.
    pub fn absorb(&mut self, other: &RequestTally) {
        self.total += other.total;
        self.ok += other.ok;
        self.forbidden += other.forbidden;
        self.not_found += other.not_found;
        self.other += other.other;
    }
}

impl fmt::Display for RequestTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests ({} ok, {} forbidden, {} not-found, {} other)",
            self.total, self.ok, self.forbidden, self.not_found, self.other
        )
    }
}

/// The complete observed result of one campaign cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's coordinates and seed.
    pub spec: CellSpec,
    /// How the deployed system terminated.
    pub outcome: SystemOutcome,
    /// The request/response pairs, in arrival order.
    pub exchanges: Vec<ServedRequest>,
    /// The UID-transformation change counts of the compiled artifact the
    /// cell instantiated.
    pub transform_stats: TransformStats,
    /// The scenario's verdict, when the scenario judges its cells.
    pub verdict: Option<CellVerdict>,
    /// Wall-clock time the cell took (instantiate + run + collect). This is
    /// measurement metadata: it varies run to run and is deliberately
    /// excluded from the deterministic canonical serialization.
    pub wall: Duration,
}

impl CellResult {
    /// Response status counts for this cell.
    #[must_use]
    pub fn tally(&self) -> RequestTally {
        RequestTally::from_exchanges(&self.exchanges)
    }

    /// The deterministic canonical line for this cell: everything observed,
    /// nothing wall-clock. Two runs of the same campaign at different
    /// worker counts must produce byte-identical lines.
    #[must_use]
    pub fn canonical_line(&self) -> String {
        let tally = self.tally();
        let verdict = match &self.verdict {
            Some(v) => format!("{}/{}", v.observed, v.expected),
            None => "-".to_string(),
        };
        format!(
            "config={:?} scenario={:?} rep={} seed={:#018x} exit={} alarm={} fault={} \
             requests={}/{}/{}/{}/{} variants={} instructions={} syscalls={} checks={} \
             detections={} io={} verdict={}",
            self.spec.config_label,
            self.spec.scenario_label,
            self.spec.replicate,
            self.spec.seed,
            self.outcome
                .exit_status
                .map_or("-".to_string(), |s| s.to_string()),
            self.outcome
                .alarm
                .as_ref()
                .map_or("-".to_string(), |a| format!("{a:?}")),
            self.outcome.fault.as_deref().unwrap_or("-"),
            tally.total,
            tally.ok,
            tally.forbidden,
            tally.not_found,
            tally.other,
            self.outcome.metrics.variants,
            self.outcome.metrics.total_instructions,
            self.outcome.metrics.syscalls,
            self.outcome.metrics.monitor_checks,
            self.outcome.metrics.detection_calls,
            self.outcome.metrics.io_bytes,
            verdict,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(response: &[u8]) -> ServedRequest {
        ServedRequest {
            request: b"GET / HTTP/1.0\r\n\r\n".to_vec(),
            response: response.to_vec(),
        }
    }

    #[test]
    fn tally_counts_statuses() {
        let exchanges = vec![
            exchange(b"HTTP/1.0 200 OK\r\n\r\nhi"),
            exchange(b"HTTP/1.1 200 OK\r\n\r\nhi"),
            exchange(b"HTTP/1.0 403 Forbidden\r\n\r\n"),
            exchange(b"HTTP/1.0 404 Not Found\r\n\r\n"),
            exchange(b""),
        ];
        let tally = RequestTally::from_exchanges(&exchanges);
        assert_eq!(tally.total, 5);
        assert_eq!(tally.ok, 2);
        assert_eq!(tally.forbidden, 1);
        assert_eq!(tally.not_found, 1);
        assert_eq!(tally.other, 1);
        let mut sum = RequestTally::default();
        sum.absorb(&tally);
        sum.absorb(&tally);
        assert_eq!(sum.total, 10);
        assert!(sum.to_string().contains("10 requests"));
    }

    #[test]
    fn verdict_matching() {
        let hit = CellVerdict {
            observed: "detected".to_string(),
            expected: "detected".to_string(),
        };
        assert!(hit.matches());
        let miss = CellVerdict {
            observed: "SUCCEEDED".to_string(),
            expected: "detected".to_string(),
        };
        assert!(!miss.matches());
    }
}
