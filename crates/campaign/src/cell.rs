//! One cell of an experiment plan: its coordinates in the
//! (configuration × world × scenario × replicate) matrix, its observed
//! result, and the derived per-cell summaries reports aggregate over.

use crate::exchange::ServedRequest;
use nvariant::{ExecutionMetrics, SystemOutcome};
use nvariant_transform::TransformStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The coordinates and derived seed of one campaign cell.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSpec {
    /// Index of the configuration in the plan's config list.
    pub config_index: usize,
    /// Index of the world template in the plan's world axis (0 when the
    /// plan has no explicit worlds and every cell runs in the artifact's
    /// own compile-time template).
    pub world_index: usize,
    /// Index of the scenario in the plan's scenario list.
    pub scenario_index: usize,
    /// Replicate number (0-based) of this (config, world, scenario) triple.
    pub replicate: usize,
    /// Label of the configuration, disambiguated by the plan when two
    /// configurations render the same label (`label`, `label#1`, ...).
    pub config_label: String,
    /// Label of the world template (`"template"` when the plan has no
    /// explicit world axis).
    pub world_label: String,
    /// Label of the scenario.
    pub scenario_label: String,
    /// The deterministic seed this cell runs under.
    pub seed: u64,
}

impl CellSpec {
    /// The canonical ordering key: cells sort config-major, then world,
    /// scenario, replicate — the order [`CampaignPlan::cells`] emits and the
    /// order [`CampaignReport::merge`] restores.
    ///
    /// [`CampaignPlan::cells`]: crate::CampaignPlan::cells
    /// [`CampaignReport::merge`]: crate::CampaignReport::merge
    #[must_use]
    pub fn coordinates(&self) -> (usize, usize, usize, usize) {
        (
            self.config_index,
            self.world_index,
            self.scenario_index,
            self.replicate,
        )
    }
}

/// A scenario's classification of a cell, alongside the prediction it was
/// expected to match (e.g. an attack's observed vs. predicted result).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellVerdict {
    /// What was observed.
    pub observed: String,
    /// What the scenario predicted.
    pub expected: String,
}

impl CellVerdict {
    /// Returns `true` if the observation matches the prediction.
    #[must_use]
    pub fn matches(&self) -> bool {
        self.observed == self.expected
    }
}

/// A flattened summary of a model-check verdict attached to a cell by a
/// scenario's check hook (see
/// [`Scenario::with_check`](crate::Scenario::with_check)). Plain strings
/// and counters so shards and merged reports stay self-contained without
/// the campaign crate depending on the checker.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckSummary {
    /// Property key (`P1`/`P2`/`P3`).
    pub property: String,
    /// Verdict (`pass` or `FAIL`).
    pub status: String,
    /// States the bounded exploration visited.
    pub states: u64,
    /// The depth bound the check ran at.
    pub depth: u64,
}

impl fmt::Display for CheckSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} states={} depth={}",
            self.property, self.status, self.states, self.depth
        )
    }
}

/// How a cell's deployed system terminated, flattened to plain data.
///
/// This is the report-side counterpart of [`SystemOutcome`]: the live
/// monitor alarm is rendered to its display string at collection time, so a
/// report is self-contained — it can be serialized to a shard file,
/// reassembled by [`CampaignReport::merge`](crate::CampaignReport::merge)
/// and compared byte-for-byte without holding live monitor state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Exit status, if the program (or agreeing variant group) exited.
    pub exit_status: Option<i32>,
    /// The rendered alarm that terminated an N-variant group, if any.
    pub alarm: Option<String>,
    /// Human-readable description of a fault that terminated a
    /// single-process run, if any.
    pub fault: Option<String>,
    /// Execution counters.
    pub metrics: ExecutionMetrics,
}

impl CellOutcome {
    /// Returns `true` if the monitor raised an alarm.
    #[must_use]
    pub fn detected_attack(&self) -> bool {
        self.alarm.is_some()
    }

    /// Returns `true` if the run ended with a normal, agreed exit.
    #[must_use]
    pub fn exited_normally(&self) -> bool {
        self.exit_status.is_some() && self.alarm.is_none() && self.fault.is_none()
    }
}

impl From<&SystemOutcome> for CellOutcome {
    fn from(outcome: &SystemOutcome) -> Self {
        CellOutcome {
            exit_status: outcome.exit_status,
            alarm: outcome.alarm.as_ref().map(ToString::to_string),
            fault: outcome.fault.clone(),
            metrics: outcome.metrics,
        }
    }
}

impl fmt::Display for CellOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Same phrasing as `SystemOutcome`'s `Display`.
        match (&self.alarm, &self.fault, self.exit_status) {
            (Some(alarm), _, _) => write!(f, "attack detected: {alarm}"),
            (None, Some(fault), _) => write!(f, "faulted: {fault}"),
            (None, None, Some(status)) => write!(f, "exited with status {status}"),
            (None, None, None) => write!(f, "did not terminate"),
        }
    }
}

/// Response status counts over a batch of served requests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTally {
    /// Total request/response pairs observed.
    pub total: usize,
    /// 200 responses.
    pub ok: usize,
    /// 403 responses.
    pub forbidden: usize,
    /// 404 responses.
    pub not_found: usize,
    /// Anything else (other statuses, empty or malformed responses).
    pub other: usize,
}

impl RequestTally {
    /// Tallies a batch of served requests.
    #[must_use]
    pub fn from_exchanges(exchanges: &[ServedRequest]) -> Self {
        let mut tally = RequestTally {
            total: exchanges.len(),
            ..RequestTally::default()
        };
        for exchange in exchanges {
            match exchange.status_code() {
                Some(200) => tally.ok += 1,
                Some(403) => tally.forbidden += 1,
                Some(404) => tally.not_found += 1,
                _ => tally.other += 1,
            }
        }
        tally
    }

    /// Merges another tally into this one.
    pub fn absorb(&mut self, other: &RequestTally) {
        self.total += other.total;
        self.ok += other.ok;
        self.forbidden += other.forbidden;
        self.not_found += other.not_found;
        self.other += other.other;
    }
}

impl fmt::Display for RequestTally {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests ({} ok, {} forbidden, {} not-found, {} other)",
            self.total, self.ok, self.forbidden, self.not_found, self.other
        )
    }
}

/// The complete observed result of one campaign cell.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellResult {
    /// The cell's coordinates and seed.
    pub spec: CellSpec,
    /// How the deployed system terminated.
    pub outcome: CellOutcome,
    /// The request/response pairs, in arrival order.
    pub exchanges: Vec<ServedRequest>,
    /// The UID-transformation change counts of the compiled artifact the
    /// cell instantiated.
    pub transform_stats: TransformStats,
    /// The scenario's verdict, when the scenario judges its cells.
    pub verdict: Option<CellVerdict>,
    /// A model-check summary, when the scenario checks its cells.
    pub checked: Option<CheckSummary>,
    /// Wall-clock time the cell took (instantiate + run + collect). This is
    /// measurement metadata: it varies run to run and is deliberately
    /// excluded from the deterministic canonical serialization.
    pub wall: Duration,
}

impl CellResult {
    /// Response status counts for this cell.
    #[must_use]
    pub fn tally(&self) -> RequestTally {
        RequestTally::from_exchanges(&self.exchanges)
    }

    /// The deterministic canonical line for this cell: everything observed,
    /// nothing wall-clock. Two runs of the same plan — at different worker
    /// counts, or sharded across processes and merged — must produce
    /// byte-identical lines.
    #[must_use]
    pub fn canonical_line(&self) -> String {
        let tally = self.tally();
        let verdict = match &self.verdict {
            Some(v) => format!("{}/{}", v.observed, v.expected),
            None => "-".to_string(),
        };
        let checked = match &self.checked {
            Some(c) => format!("{}:{}:{}:{}", c.property, c.status, c.states, c.depth),
            None => "-".to_string(),
        };
        format!(
            "config={:?} world={:?} scenario={:?} rep={} seed={:#018x} exit={} alarm={} fault={} \
             requests={}/{}/{}/{}/{} variants={} instructions={} syscalls={} checks={} \
             detections={} io={} verdict={} checked={}",
            self.spec.config_label,
            self.spec.world_label,
            self.spec.scenario_label,
            self.spec.replicate,
            self.spec.seed,
            self.outcome
                .exit_status
                .map_or("-".to_string(), |s| s.to_string()),
            self.outcome
                .alarm
                .as_ref()
                .map_or("-".to_string(), |a| format!("{a:?}")),
            self.outcome.fault.as_deref().unwrap_or("-"),
            tally.total,
            tally.ok,
            tally.forbidden,
            tally.not_found,
            tally.other,
            self.outcome.metrics.variants,
            self.outcome.metrics.total_instructions,
            self.outcome.metrics.syscalls,
            self.outcome.metrics.monitor_checks,
            self.outcome.metrics.detection_calls,
            self.outcome.metrics.io_bytes,
            verdict,
            checked,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exchange(response: &[u8]) -> ServedRequest {
        ServedRequest {
            request: b"GET / HTTP/1.0\r\n\r\n".to_vec(),
            response: response.to_vec(),
        }
    }

    #[test]
    fn tally_counts_statuses() {
        let exchanges = vec![
            exchange(b"HTTP/1.0 200 OK\r\n\r\nhi"),
            exchange(b"HTTP/1.1 200 OK\r\n\r\nhi"),
            exchange(b"HTTP/1.0 403 Forbidden\r\n\r\n"),
            exchange(b"HTTP/1.0 404 Not Found\r\n\r\n"),
            exchange(b""),
        ];
        let tally = RequestTally::from_exchanges(&exchanges);
        assert_eq!(tally.total, 5);
        assert_eq!(tally.ok, 2);
        assert_eq!(tally.forbidden, 1);
        assert_eq!(tally.not_found, 1);
        assert_eq!(tally.other, 1);
        let mut sum = RequestTally::default();
        sum.absorb(&tally);
        sum.absorb(&tally);
        assert_eq!(sum.total, 10);
        assert!(sum.to_string().contains("10 requests"));
    }

    #[test]
    fn verdict_matching() {
        let hit = CellVerdict {
            observed: "detected".to_string(),
            expected: "detected".to_string(),
        };
        assert!(hit.matches());
        let miss = CellVerdict {
            observed: "SUCCEEDED".to_string(),
            expected: "detected".to_string(),
        };
        assert!(!miss.matches());
    }

    #[test]
    fn cell_outcome_flattens_a_system_outcome() {
        let live = SystemOutcome {
            exit_status: None,
            alarm: Some(nvariant_monitor::Alarm::new(
                nvariant_monitor::DivergenceKind::DetectionCheckFailed {
                    sysno: nvariant_simos::Sysno::UidValue,
                    canonical_values: vec![],
                },
                9,
            )),
            fault: None,
            metrics: ExecutionMetrics::default(),
        };
        let flat = CellOutcome::from(&live);
        assert!(flat.detected_attack());
        assert!(!flat.exited_normally());
        let alarm = flat.alarm.as_deref().unwrap();
        assert!(alarm.contains("uid_value"), "{alarm}");
        assert!(alarm.contains("point 9"), "{alarm}");
        assert!(flat.to_string().contains("attack detected"));

        let clean = SystemOutcome {
            exit_status: Some(0),
            alarm: None,
            fault: None,
            metrics: ExecutionMetrics::default(),
        };
        let flat = CellOutcome::from(&clean);
        assert!(flat.exited_normally());
        assert!(flat.to_string().contains("status 0"));
    }

    #[test]
    fn coordinates_order_config_major() {
        let spec = CellSpec {
            config_index: 2,
            world_index: 1,
            scenario_index: 3,
            replicate: 4,
            config_label: "c".to_string(),
            world_label: "w".to_string(),
            scenario_label: "s".to_string(),
            seed: 0,
        };
        assert_eq!(spec.coordinates(), (2, 1, 3, 4));
    }
}
