//! Request/response pairs observed at the simulated network, with an HTTP
//! status-line parser shared by every scenario and report.

use serde::{Deserialize, Serialize};

/// One request/response pair observed at the simulated network.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServedRequest {
    /// The raw request the client sent.
    pub request: Vec<u8>,
    /// The raw response the server produced (possibly empty if the group
    /// was terminated before answering).
    pub response: Vec<u8>,
}

impl ServedRequest {
    /// Parses the HTTP status code out of the response's status line.
    ///
    /// Accepts any `HTTP/<major>.<minor>` version token (`HTTP/1.0`,
    /// `HTTP/1.1`, ...), then expects a three-digit status code. Returns
    /// `None` for empty or malformed responses.
    #[must_use]
    pub fn status_code(&self) -> Option<u16> {
        let line = self
            .response
            .split(|&b| b == b'\r' || b == b'\n')
            .next()
            .unwrap_or(&[]);
        let rest = line.strip_prefix(b"HTTP/")?;
        // The version token ("1.0", "1.1", "2", ...) up to the space: must
        // start with a digit and contain only digits and dots.
        let space = rest.iter().position(|&b| b == b' ')?;
        let version = &rest[..space];
        if !version.first().is_some_and(u8::is_ascii_digit)
            || !version.iter().all(|&b| b.is_ascii_digit() || b == b'.')
        {
            return None;
        }
        // Exactly three status digits, terminated by a space, the reason
        // phrase, or the end of the line ("HTTP/1.0 2004" is malformed).
        let status_line = &rest[space + 1..];
        let digits = status_line.get(..3)?;
        if !digits.iter().all(u8::is_ascii_digit) || status_line.get(3).is_some_and(|&b| b != b' ')
        {
            return None;
        }
        Some(
            digits
                .iter()
                .fold(0u16, |acc, &d| acc * 10 + u16::from(d - b'0')),
        )
    }

    /// Returns `true` if the response is a 200.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.status_code() == Some(200)
    }

    /// Returns `true` if the response is a 403.
    #[must_use]
    pub fn is_forbidden(&self) -> bool {
        self.status_code() == Some(403)
    }

    /// Returns `true` if the response is a 404.
    #[must_use]
    pub fn is_not_found(&self) -> bool {
        self.status_code() == Some(404)
    }

    /// The response body (everything after the blank line).
    #[must_use]
    pub fn body(&self) -> &[u8] {
        match self.response.windows(4).position(|w| w == b"\r\n\r\n") {
            Some(pos) => &self.response[pos + 4..],
            None => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn served(response: &[u8]) -> ServedRequest {
        ServedRequest {
            request: b"GET / HTTP/1.0\r\n\r\n".to_vec(),
            response: response.to_vec(),
        }
    }

    #[test]
    fn status_code_parses_both_http_versions() {
        assert_eq!(
            served(b"HTTP/1.0 200 OK\r\n\r\nhello").status_code(),
            Some(200)
        );
        assert_eq!(
            served(b"HTTP/1.1 200 OK\r\n\r\nhello").status_code(),
            Some(200)
        );
        assert_eq!(
            served(b"HTTP/1.1 404 Not Found\r\n\r\n").status_code(),
            Some(404)
        );
        assert_eq!(
            served(b"HTTP/2 403 Forbidden\r\n\r\n").status_code(),
            Some(403)
        );
    }

    #[test]
    fn status_code_rejects_malformed_responses() {
        assert_eq!(served(b"").status_code(), None);
        assert_eq!(served(b"garbage").status_code(), None);
        assert_eq!(served(b"HTTP/ 200 OK").status_code(), None);
        assert_eq!(served(b"HTTP/x.y 200 OK").status_code(), None);
        assert_eq!(served(b"HTTP/1.0").status_code(), None);
        assert_eq!(served(b"HTTP/1.0 2x0 huh").status_code(), None);
        assert_eq!(served(b"HTTP/1.0 20").status_code(), None);
        // Exactly three status digits and a real version token.
        assert_eq!(served(b"HTTP/1.1 2004 Weird\r\n\r\n").status_code(), None);
        assert_eq!(served(b"HTTP/.. 200 OK\r\n\r\n").status_code(), None);
        assert_eq!(served(b"HTTP/.1 200 OK\r\n\r\n").status_code(), None);
        // Bare status with no reason phrase is fine.
        assert_eq!(served(b"HTTP/1.1 204\r\n\r\n").status_code(), Some(204));
    }

    #[test]
    fn helpers_use_the_parser() {
        assert!(served(b"HTTP/1.1 200 OK\r\n\r\n").is_success());
        assert!(served(b"HTTP/1.1 403 Forbidden\r\n\r\n").is_forbidden());
        assert!(served(b"HTTP/1.1 404 Not Found\r\n\r\n").is_not_found());
        assert!(!served(b"").is_success());
        assert!(!served(b"").is_not_found());
    }

    #[test]
    fn body_extracts_after_blank_line() {
        assert_eq!(served(b"HTTP/1.0 200 OK\r\n\r\nhello").body(), b"hello");
        assert_eq!(served(b"no blank line").body(), b"");
    }
}
