//! Constant-memory campaign aggregation: the stream-and-fold result path.
//!
//! The materialized result path ([`CampaignReport`]) holds every cell in
//! memory, which caps a sweep at the coordinator's address space. This
//! module is the streaming alternative:
//!
//! * [`LatencyHistogram`] — a deterministic fixed-boundary log-bucket
//!   sketch of per-cell wall times. Buckets have 64 sub-buckets per octave
//!   (values below 64 ns are exact), so every quantile is a bucket lower
//!   bound within 1/64 (≤ 1.5625%, documented as ≤ 2%) of the true value,
//!   and merging two histograms is an element-wise counter add: exact,
//!   order-independent, associative and commutative.
//! * [`StreamingAggregator`] — folds cells one at a time into
//!   O(configs × worlds × scenarios) state: counts, verdict tallies, the
//!   latency sketch, and per-(config, world, scenario) group tallies. Its
//!   [`render_summary`](StreamingAggregator::render_summary) is
//!   byte-identical to [`CampaignReport::render_summary`] (which is
//!   implemented over it), and its
//!   [`render_surface`](StreamingAggregator::render_surface) emits the
//!   attack-success-probability surface: per config × world × attack,
//!   success and detection rates with Wilson 95% intervals.
//! * [`ShardMerger`] — a k-way merge over coordinate-sorted
//!   [`ShardCursor`]s with the same plan-hash gate and
//!   duplicate/missing/unexpected-cell validation as
//!   [`CampaignReport::merge`], holding at most one cell per shard in
//!   memory.
//! * [`SyntheticSweep`] — a judged synthetic cell generator (no VM, no
//!   HTTP) that scales the *pipeline* to millions of cells, so CI can pin
//!   the constant-memory property under an address-space cap.

use crate::cell::{CellOutcome, CellResult, CellSpec, CellVerdict, RequestTally};
use crate::engine::cell_seed;
use crate::report::{CampaignReport, MergeError, PlanShape, WallPercentiles};
use crate::shardio::{ShardCursor, ShardHeader, ShardParseError};
use nvariant::{CacheStats, ExecutionMetrics};
use nvariant_types::fnv1a_64;
use std::collections::BTreeMap;
use std::fmt;
use std::io::BufRead;
use std::time::Duration;

/// Sub-bucket resolution of [`LatencyHistogram`]: 2^6 = 64 sub-buckets per
/// octave, giving a worst-case relative bucket width of 1/64 = 1.5625%.
pub const SUB_BUCKET_BITS: u32 = 6;

const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Bucket count covering the full `u64` nanosecond range: octave 0 holds
/// the exact values `0..64`, octaves 1..=58 hold exponents 6..=63.
const BUCKET_COUNT: usize = SUB_BUCKETS * 59;

/// The documented worst-case relative error of histogram quantiles: a
/// quantile is reported as its bucket's lower bound, and buckets are at
/// most 1/64 ≈ 1.57% wide relative to their value.
pub const QUANTILE_RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

/// A deterministic fixed-boundary log-bucket histogram of durations.
///
/// The bucket boundaries are fixed integers (no floating point, no
/// per-instance configuration), so two histograms over the same values are
/// equal regardless of insertion order, and
/// [`merge`](LatencyHistogram::merge) — an element-wise add — is exact,
/// associative and commutative. Quantiles are nearest-rank over bucket
/// counts, reported as the bucket's lower bound (an underestimate of at
/// most [`QUANTILE_RELATIVE_ERROR`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKET_COUNT],
            total: 0,
        }
    }

    /// The bucket index of a nanosecond value. Values below 64 are exact;
    /// larger values keep their top 6 mantissa bits.
    #[must_use]
    pub fn bucket_index(nanos: u64) -> usize {
        if nanos < SUB_BUCKETS as u64 {
            usize::try_from(nanos).expect("nanos < 64 fits usize")
        } else {
            let exponent = nanos.ilog2();
            let octave = (exponent - (SUB_BUCKET_BITS - 1)) as usize;
            let mantissa = (nanos >> (exponent - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1);
            octave * SUB_BUCKETS + usize::try_from(mantissa).expect("6-bit mantissa fits usize")
        }
    }

    /// The smallest nanosecond value mapping to `index` — the value
    /// quantiles report for a bucket.
    #[must_use]
    pub fn bucket_floor(index: usize) -> u64 {
        let octave = index / SUB_BUCKETS;
        let mantissa = (index % SUB_BUCKETS) as u64;
        if octave == 0 {
            mantissa
        } else {
            (SUB_BUCKETS as u64 + mantissa) << (octave - 1)
        }
    }

    /// Records one duration (saturated to `u64` nanoseconds).
    pub fn record(&mut self, wall: Duration) {
        let nanos = u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX);
        self.counts[Self::bucket_index(nanos)] += 1;
        self.total += 1;
    }

    /// Number of recorded durations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Adds another histogram's counts into this one. Exact and
    /// order-independent: `a.merge(b)` equals recording both value streams
    /// into one histogram, in any order.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// The nearest-rank `percent`-th quantile as its bucket's lower bound,
    /// or `None` for an empty histogram.
    #[must_use]
    pub fn quantile(&self, percent: u64) -> Option<Duration> {
        if self.total == 0 {
            return None;
        }
        let rank = (u128::from(self.total) * u128::from(percent))
            .div_ceil(100)
            .max(1);
        let mut cumulative: u128 = 0;
        for (index, count) in self.counts.iter().enumerate() {
            cumulative += u128::from(*count);
            if cumulative >= rank {
                return Some(Duration::from_nanos(Self::bucket_floor(index)));
            }
        }
        // rank <= total, so the walk always terminates inside the loop.
        unreachable!("quantile rank exceeds recorded total")
    }

    /// The p50/p95/p99 sketch quantiles, or `None` for an empty histogram.
    #[must_use]
    pub fn percentiles(&self) -> Option<WallPercentiles> {
        Some(WallPercentiles {
            p50: self.quantile(50)?,
            p95: self.quantile(95)?,
            p99: self.quantile(99)?,
        })
    }
}

/// Per-(config, world, scenario) tallies the aggregator maintains — the
/// rows of the attack-success-probability surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupTally {
    /// Configuration label (first seen for this matrix position).
    pub config_label: String,
    /// World label.
    pub world_label: String,
    /// Scenario label (the attack name for judged scenarios).
    pub scenario_label: String,
    /// Cells folded into this group.
    pub cells: usize,
    /// Judged cells (cells carrying a verdict).
    pub judged: usize,
    /// Judged cells observed as `detected`.
    pub detected: usize,
    /// Judged cells observed as `SUCCEEDED`.
    pub succeeded: usize,
    /// Judged cells observed as anything else (`failed`).
    pub failed: usize,
    /// Judged cells whose observation disagreed with the prediction.
    pub mismatches: usize,
}

impl GroupTally {
    fn absorb_group(&mut self, other: &GroupTally) {
        self.cells += other.cells;
        self.judged += other.judged;
        self.detected += other.detected;
        self.succeeded += other.succeeded;
        self.failed += other.failed;
        self.mismatches += other.mismatches;
    }
}

/// The Wilson 95% score interval for `successes` out of `n` trials, as
/// `(low, high)` proportions. `(0, 0)` for `n == 0`.
#[must_use]
pub fn wilson_95(successes: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 0.0);
    }
    let z = 1.96_f64;
    #[allow(clippy::cast_precision_loss)]
    let n_f = n as f64;
    #[allow(clippy::cast_precision_loss)]
    let p = successes as f64 / n_f;
    let z2 = z * z;
    let denominator = 1.0 + z2 / n_f;
    let center = (p + z2 / (2.0 * n_f)) / denominator;
    let half = (z / denominator) * (p * (1.0 - p) / n_f + z2 / (4.0 * n_f * n_f)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Folds campaign cells one at a time into O(configs × worlds × scenarios)
/// state, producing the same summary text as the materialized report path
/// and the attack-success-probability surface.
///
/// Every piece of state is order-independent (counters, maxima, exact
/// histogram merges, index-keyed maps), so folding any permutation of a
/// plan's cells — or merging per-worker aggregators — yields byte-identical
/// output.
#[derive(Clone, Debug)]
pub struct StreamingAggregator {
    name: String,
    base_seed: u64,
    plan_hash: u64,
    shape: PlanShape,
    workers: usize,
    total_wall: Duration,
    cache: Option<CacheStats>,
    cells: usize,
    survived: usize,
    detected: usize,
    judged: usize,
    matched: usize,
    tally: RequestTally,
    metrics: ExecutionMetrics,
    slowest: Duration,
    histogram: LatencyHistogram,
    worlds: BTreeMap<usize, String>,
    groups: BTreeMap<(usize, usize, usize), GroupTally>,
}

impl StreamingAggregator {
    /// A fresh aggregator for the identified plan.
    #[must_use]
    pub fn new(name: impl Into<String>, base_seed: u64, plan_hash: u64, shape: PlanShape) -> Self {
        StreamingAggregator {
            name: name.into(),
            base_seed,
            plan_hash,
            shape,
            workers: 1,
            total_wall: Duration::ZERO,
            cache: None,
            cells: 0,
            survived: 0,
            detected: 0,
            judged: 0,
            matched: 0,
            tally: RequestTally::default(),
            metrics: ExecutionMetrics::default(),
            slowest: Duration::ZERO,
            histogram: LatencyHistogram::new(),
            worlds: BTreeMap::new(),
            groups: BTreeMap::new(),
        }
    }

    /// An aggregator identified by a shard header (used when folding a
    /// merge): takes the plan identity plus the header's worker and wall
    /// metadata.
    #[must_use]
    pub fn from_header(header: &ShardHeader) -> Self {
        let mut aggregator = StreamingAggregator::new(
            header.name.clone(),
            header.base_seed,
            header.plan_hash,
            header.shape,
        );
        aggregator.workers = header.workers;
        aggregator.total_wall = header.total_wall;
        aggregator
    }

    /// Sets the worker count reported in the summary.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers;
    }

    /// Sets the run wall-clock reported in the summary.
    pub fn set_total_wall(&mut self, total_wall: Duration) {
        self.total_wall = total_wall;
    }

    /// Adds to the run wall-clock (shard walls sum under a merge).
    pub fn add_wall(&mut self, wall: Duration) {
        self.total_wall += wall;
    }

    /// Sets the cell-cache counters reported in the summary.
    pub fn set_cache(&mut self, cache: Option<CacheStats>) {
        self.cache = cache;
    }

    /// Cells folded so far.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Judged cells folded so far.
    #[must_use]
    pub fn judged_cells(&self) -> usize {
        self.judged
    }

    /// Judged cells whose observation disagreed with the prediction.
    #[must_use]
    pub fn verdict_mismatches(&self) -> usize {
        self.judged - self.matched
    }

    /// The plan hash the aggregator was identified with.
    #[must_use]
    pub fn plan_hash(&self) -> u64 {
        self.plan_hash
    }

    /// The plan's base seed.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The plan's matrix shape.
    #[must_use]
    pub fn shape(&self) -> PlanShape {
        self.shape
    }

    /// The per-(config, world, scenario) group tallies, in canonical
    /// coordinate order.
    pub fn groups(&self) -> impl Iterator<Item = (&(usize, usize, usize), &GroupTally)> {
        self.groups.iter()
    }

    /// Folds one cell into the aggregate state.
    pub fn absorb(&mut self, cell: &CellResult) {
        self.cells += 1;
        if cell.outcome.exited_normally() {
            self.survived += 1;
        }
        if cell.outcome.detected_attack() {
            self.detected += 1;
        }
        self.tally.absorb(&cell.tally());
        self.metrics.absorb(&cell.outcome.metrics);
        self.slowest = self.slowest.max(cell.wall);
        self.histogram.record(cell.wall);
        self.worlds
            .entry(cell.spec.world_index)
            .or_insert_with(|| cell.spec.world_label.clone());
        let group = self
            .groups
            .entry((
                cell.spec.config_index,
                cell.spec.world_index,
                cell.spec.scenario_index,
            ))
            .or_insert_with(|| GroupTally {
                config_label: cell.spec.config_label.clone(),
                world_label: cell.spec.world_label.clone(),
                scenario_label: cell.spec.scenario_label.clone(),
                cells: 0,
                judged: 0,
                detected: 0,
                succeeded: 0,
                failed: 0,
                mismatches: 0,
            });
        group.cells += 1;
        if let Some(verdict) = &cell.verdict {
            self.judged += 1;
            group.judged += 1;
            if verdict.matches() {
                self.matched += 1;
            } else {
                group.mismatches += 1;
            }
            match verdict.observed.as_str() {
                "detected" => group.detected += 1,
                "SUCCEEDED" => group.succeeded += 1,
                _ => group.failed += 1,
            }
        }
    }

    /// Merges another aggregator over the same plan into this one (the
    /// parallel-fold reduction: each worker folds its claimed cells
    /// locally, then the locals merge). Workers take the maximum, walls
    /// sum, everything else adds exactly.
    pub fn merge(&mut self, other: &StreamingAggregator) {
        debug_assert_eq!(
            self.plan_hash, other.plan_hash,
            "merging foreign aggregators"
        );
        self.workers = self.workers.max(other.workers);
        self.total_wall += other.total_wall;
        self.cache = match (self.cache, other.cache) {
            (None, None) => None,
            (a, b) => Some(a.unwrap_or_default().merged(b.unwrap_or_default())),
        };
        self.cells += other.cells;
        self.survived += other.survived;
        self.detected += other.detected;
        self.judged += other.judged;
        self.matched += other.matched;
        self.tally.absorb(&other.tally);
        self.metrics.absorb(&other.metrics);
        self.slowest = self.slowest.max(other.slowest);
        self.histogram.merge(&other.histogram);
        for (index, label) in &other.worlds {
            self.worlds.entry(*index).or_insert_with(|| label.clone());
        }
        for (key, tally) in &other.groups {
            match self.groups.get_mut(key) {
                Some(mine) => mine.absorb_group(tally),
                None => {
                    self.groups.insert(*key, tally.clone());
                }
            }
        }
    }

    /// The sketch quantiles of per-cell wall times, or `None` before any
    /// cell was folded.
    #[must_use]
    pub fn wall_percentiles(&self) -> Option<WallPercentiles> {
        self.histogram.percentiles()
    }

    fn rate(&self, count: usize) -> f64 {
        if self.cells == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let rate = count as f64 / self.cells as f64;
        rate
    }

    /// The distinct world labels, in world-index (canonical) order.
    #[must_use]
    pub fn world_labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = Vec::new();
        for label in self.worlds.values() {
            if !labels.contains(&label.as_str()) {
                labels.push(label);
            }
        }
        labels
    }

    /// The summary text — byte-identical to
    /// [`CampaignReport::render_summary`] over the same cells.
    #[must_use]
    pub fn render_summary(&self) -> String {
        let mut out = format!(
            "campaign '{}': {} cells on {} workers in {:.1?} (slowest cell {:.1?})\n",
            self.name, self.cells, self.workers, self.total_wall, self.slowest,
        );
        out.push_str(&format!(
            "  survival rate {:.1}%, detection rate {:.1}%\n",
            self.rate(self.survived) * 100.0,
            self.rate(self.detected) * 100.0
        ));
        out.push_str(&format!("  {}\n", self.tally));
        out.push_str(&format!("  {}\n", self.metrics));
        if let Some(percentiles) = self.wall_percentiles() {
            out.push_str(&format!("  per-cell wall {percentiles}\n"));
        }
        if let Some(stats) = &self.cache {
            out.push_str(&format!("  cell cache: {stats}\n"));
        }
        let worlds = self.world_labels();
        if worlds.len() > 1 {
            out.push_str(&format!(
                "  {} worlds on the environment axis: {}\n",
                worlds.len(),
                worlds.join(", ")
            ));
        }
        if self.judged > 0 {
            out.push_str(&format!(
                "  {} of {} judged cells match their prediction\n",
                self.matched, self.judged
            ));
        }
        out
    }

    /// The attack-success-probability surface: one line per judged
    /// (config, world, attack) group in canonical coordinate order, with
    /// success and detection rates and the Wilson 95% interval on the
    /// success probability.
    #[must_use]
    pub fn render_surface(&self) -> String {
        let judged_groups = self.groups.values().filter(|g| g.judged > 0).count();
        let mut out = format!(
            "surface campaign={:?} plan={:#018x} groups={} judged_cells={}\n",
            self.name, self.plan_hash, judged_groups, self.judged
        );
        for group in self.groups.values().filter(|g| g.judged > 0) {
            #[allow(clippy::cast_precision_loss)]
            let n = group.judged as f64;
            #[allow(clippy::cast_precision_loss)]
            let success_rate = group.succeeded as f64 / n * 100.0;
            #[allow(clippy::cast_precision_loss)]
            let detection_rate = group.detected as f64 / n * 100.0;
            let (low, high) = wilson_95(group.succeeded, group.judged);
            out.push_str(&format!(
                "config={:?} world={:?} attack={:?} cells={} success={} rate={:.1}% \
                 ci95=[{:.1}%, {:.1}%] detected={} rate={:.1}% failed={} mismatches={}\n",
                group.config_label,
                group.world_label,
                group.scenario_label,
                group.judged,
                group.succeeded,
                success_rate,
                low * 100.0,
                high * 100.0,
                group.detected,
                detection_rate,
                group.failed,
                group.mismatches,
            ));
        }
        out
    }
}

impl CampaignReport {
    /// Folds this report's cells into a fresh aggregator carrying the
    /// report's identity and metadata — the bridge that keeps the
    /// materialized and streaming paths byte-identical, because the
    /// materialized summary and surface are rendered *through* it.
    #[must_use]
    pub fn fold_aggregator(&self) -> StreamingAggregator {
        let mut aggregator = StreamingAggregator::new(
            self.name.clone(),
            self.base_seed,
            self.plan_hash,
            self.shape,
        );
        aggregator.set_workers(self.workers);
        aggregator.set_total_wall(self.total_wall);
        aggregator.set_cache(self.cache);
        for cell in &self.cells {
            aggregator.absorb(cell);
        }
        aggregator
    }

    /// The attack-success-probability surface of this report (see
    /// [`StreamingAggregator::render_surface`]).
    #[must_use]
    pub fn render_surface(&self) -> String {
        self.fold_aggregator().render_surface()
    }
}

/// Why a streaming merge failed: a shard failed to parse, or the shard set
/// failed the same validation [`CampaignReport::merge`] performs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamMergeError {
    /// A shard's cursor hit malformed input or an I/O failure.
    Shard {
        /// Index of the failing shard in the cursor list.
        shard: usize,
        /// The underlying parse error.
        error: ShardParseError,
    },
    /// The shard set failed merge validation.
    Merge(MergeError),
}

impl fmt::Display for StreamMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamMergeError::Shard { shard, error } => {
                write!(f, "shard {shard}: {error}")
            }
            StreamMergeError::Merge(error) => error.fmt(f),
        }
    }
}

impl std::error::Error for StreamMergeError {}

impl From<MergeError> for StreamMergeError {
    fn from(error: MergeError) -> Self {
        StreamMergeError::Merge(error)
    }
}

/// A lazy enumerator of a matrix shape's canonical coordinate order —
/// [`PlanShape::coordinates`] without the allocation, so validating
/// coverage of an absurdly declared shape costs iteration, not memory.
#[derive(Clone, Debug)]
pub struct CoordinateWalk {
    shape: PlanShape,
    next: Option<(usize, usize, usize, usize)>,
}

impl CoordinateWalk {
    /// Starts a walk over `shape`'s matrix.
    #[must_use]
    pub fn new(shape: PlanShape) -> Self {
        let next = (shape.cell_count() > 0).then_some((0, 0, 0, 0));
        CoordinateWalk { shape, next }
    }

    /// The next coordinate without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<(usize, usize, usize, usize)> {
        self.next
    }
}

impl Iterator for CoordinateWalk {
    type Item = (usize, usize, usize, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let current = self.next?;
        let (mut c, mut w, mut s, mut r) = current;
        r += 1;
        if r == self.shape.replicates {
            r = 0;
            s += 1;
            if s == self.shape.scenarios {
                s = 0;
                w += 1;
                if w == self.shape.worlds {
                    w = 0;
                    c += 1;
                }
            }
        }
        self.next = (c < self.shape.configs).then_some((c, w, s, r));
        Some(current)
    }
}

/// Cap on the missing-coordinate listing, matching
/// [`CampaignReport::merge`].
const MISSING_CAP: usize = 64;

/// An incremental, plan-hash-gated k-way merge over coordinate-sorted
/// shard cursors.
///
/// Construction gates the headers exactly like [`CampaignReport::merge`]
/// (name, base seed, plan hash, shape, shape plausibility); each
/// [`next_cell`](ShardMerger::next_cell) yields the next cell in canonical
/// order while detecting duplicate, unexpected and missing cells on the
/// fly. Peak memory is one buffered cell per shard, independent of shard
/// size.
pub struct ShardMerger<R> {
    cursors: Vec<ShardCursor<R>>,
    heads: Vec<Option<CellResult>>,
    expected: CoordinateWalk,
    header: ShardHeader,
    covered: usize,
    expected_count: usize,
    missing: Vec<(usize, usize, usize, usize)>,
    finished: bool,
}

impl<R: BufRead> ShardMerger<R> {
    /// Gates the cursors' headers against each other and buffers the first
    /// cell of each shard.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamMergeError`] if no cursors are supplied, the
    /// headers disagree on plan identity, the declared shape's cell count
    /// overflows, or a first cell fails to parse.
    pub fn new(cursors: Vec<ShardCursor<R>>) -> Result<Self, StreamMergeError> {
        let first = cursors.first().ok_or(MergeError::Empty)?;
        let mut header = first.header().clone();
        for cursor in &cursors[1..] {
            let shard = cursor.header();
            if shard.name != header.name {
                return Err(MergeError::NameMismatch(header.name, shard.name.clone()).into());
            }
            if shard.base_seed != header.base_seed {
                return Err(MergeError::SeedMismatch(header.base_seed, shard.base_seed).into());
            }
            if shard.plan_hash != header.plan_hash {
                return Err(MergeError::PlanMismatch {
                    merged: header.plan_hash,
                    shard: shard.plan_hash,
                }
                .into());
            }
            if shard.shape != header.shape {
                return Err(MergeError::ShapeMismatch(header.shape, shard.shape).into());
            }
            header.workers = header.workers.max(shard.workers);
            header.total_wall += shard.total_wall;
        }
        let expected_count = header
            .shape
            .checked_cell_count()
            .ok_or(MergeError::ImplausibleShape(header.shape))?;
        let mut merger = ShardMerger {
            heads: Vec::with_capacity(cursors.len()),
            expected: CoordinateWalk::new(header.shape),
            header,
            covered: 0,
            expected_count,
            missing: Vec::new(),
            finished: false,
            cursors,
        };
        for index in 0..merger.cursors.len() {
            let head = merger.advance_shard(index)?;
            merger.heads.push(head);
        }
        Ok(merger)
    }

    /// The merged header: plan identity from the gate, `workers` as the
    /// widest shard, `total_wall` as the sum of shard walls.
    #[must_use]
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// Cells emitted so far.
    #[must_use]
    pub fn covered(&self) -> usize {
        self.covered
    }

    fn advance_shard(&mut self, index: usize) -> Result<Option<CellResult>, StreamMergeError> {
        self.cursors[index]
            .next_cell()
            .map_err(|error| StreamMergeError::Shard {
                shard: index,
                error,
            })
    }

    /// Yields the next cell in canonical coordinate order, or `None` once
    /// every shard is drained and the plan's matrix is fully covered.
    ///
    /// Gap detection is deferred to exhaustion (so the error can report the
    /// exact covered/expected counts, like the materialized merge), but
    /// duplicates and out-of-matrix cells fail as soon as they surface.
    ///
    /// # Errors
    ///
    /// Returns a [`StreamMergeError`] on parse failure, duplicate cells,
    /// cells outside the matrix, or (at exhaustion) incomplete coverage.
    pub fn next_cell(&mut self) -> Result<Option<CellResult>, StreamMergeError> {
        if self.finished {
            return Ok(None);
        }
        // The shard with the least head coordinate goes next; an equal pair
        // of heads is a duplicate across shards.
        let mut least: Option<usize> = None;
        for (index, head) in self.heads.iter().enumerate() {
            let Some(cell) = head else { continue };
            match least {
                None => least = Some(index),
                Some(best) => {
                    let best_coords = self.heads[best]
                        .as_ref()
                        .expect("least head is present")
                        .spec
                        .coordinates();
                    let coords = cell.spec.coordinates();
                    if coords == best_coords {
                        let (c, w, s, r) = coords;
                        return Err(MergeError::DuplicateCell(c, w, s, r).into());
                    }
                    if coords < best_coords {
                        least = Some(index);
                    }
                }
            }
        }
        let Some(index) = least else {
            // Every shard is drained: the merge is complete iff the matrix
            // is covered.
            self.finished = true;
            if self.covered == self.expected_count {
                return Ok(None);
            }
            while self.missing.len() < MISSING_CAP {
                let Some(gap) = self.expected.next() else {
                    break;
                };
                self.missing.push(gap);
            }
            return Err(MergeError::MissingCells {
                missing: std::mem::take(&mut self.missing),
                covered: self.covered,
                expected: self.expected_count,
            }
            .into());
        };
        let coordinates = self.heads[index]
            .as_ref()
            .expect("selected head is present")
            .spec
            .coordinates();
        if !self.header.shape.contains(coordinates) {
            let (c, w, s, r) = coordinates;
            return Err(MergeError::UnexpectedCell(c, w, s, r).into());
        }
        // Walk the expected enumerator up to this coordinate, recording
        // gaps (reported at exhaustion). A head *behind* the enumerator is
        // a cell the merge already emitted: a within-shard duplicate, or an
        // out-of-order shard file.
        loop {
            match self.expected.peek() {
                Some(expected) if expected < coordinates => {
                    self.expected.next();
                    if self.missing.len() < MISSING_CAP {
                        self.missing.push(expected);
                    }
                }
                Some(expected) if expected == coordinates => {
                    self.expected.next();
                    break;
                }
                _ => {
                    let (c, w, s, r) = coordinates;
                    return Err(MergeError::DuplicateCell(c, w, s, r).into());
                }
            }
        }
        let next_head = self.advance_shard(index)?;
        let cell =
            std::mem::replace(&mut self.heads[index], next_head).expect("selected head is present");
        self.covered += 1;
        Ok(Some(cell))
    }
}

/// The synthetic sweep: a judged cell generator with no VM, no HTTP and no
/// per-cell allocs beyond its labels, deterministic in the base seed — the
/// workload that scales the streaming pipeline to millions of cells so the
/// constant-memory property can be pinned in CI under an address-space
/// cap.
///
/// The matrix models the paper's evaluation: 5 configurations × 4 worlds ×
/// 3 attack classes, with per-(config, attack) detection probabilities
/// drawn per cell from the cell seed. Every cell is judged, so the surface
/// report is fully populated and its Wilson intervals tighten as the
/// replicate axis grows.
#[derive(Clone, Debug)]
pub struct SyntheticSweep {
    /// Campaign name carried into summaries.
    pub name: String,
    /// Base seed every cell seed derives from.
    pub base_seed: u64,
    /// The matrix shape (replicates scale the cell count).
    pub shape: PlanShape,
}

/// Synthetic configuration labels (the deployment axis).
const SYNTHETIC_CONFIGS: [&str; 5] = [
    "unprotected",
    "uid-2v",
    "addr-2v",
    "uid-addr-composed",
    "full-3v",
];

/// Synthetic world labels (the environment axis).
const SYNTHETIC_WORLDS: [&str; 4] = ["standard", "alt-docroot", "alt-accounts", "faulty-fs"];

/// Synthetic attack labels (the scenario axis) — the paper's three attack
/// classes.
const SYNTHETIC_ATTACKS: [&str; 3] = ["uid-overflow", "uid-poke", "docroot-poke"];

/// Per-mille detection probability of attack `s` under configuration `c`:
/// protected pairs detect with high probability, unprotected ones almost
/// never do — noisy enough that the Wilson intervals are non-trivial.
fn synthetic_detect_per_mille(config: usize, attack: usize) -> u64 {
    let protects_uid = matches!(config, 1 | 3 | 4);
    let protects_addresses = matches!(config, 2..=4);
    let protected = match attack {
        0 => protects_uid,
        1 => protects_uid || protects_addresses,
        _ => protects_addresses,
    };
    if protected {
        970
    } else {
        15
    }
}

/// splitmix64 finalizer: the per-cell outcome draw.
fn synthetic_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SyntheticSweep {
    /// A sweep over the full synthetic matrix with the given replicate
    /// count: `5 × 4 × 3 × replicates` cells.
    #[must_use]
    pub fn new(replicates: usize) -> Self {
        SyntheticSweep {
            name: "synthetic-sweep".to_string(),
            base_seed: 0x5EED_CE11,
            shape: PlanShape {
                configs: SYNTHETIC_CONFIGS.len(),
                worlds: SYNTHETIC_WORLDS.len(),
                scenarios: SYNTHETIC_ATTACKS.len(),
                replicates: replicates.max(1),
            },
        }
    }

    /// The canonical hash of the synthetic plan (name, seed, shape) — the
    /// same FNV-1a construction real plans use, so synthetic shards gate
    /// merges identically.
    #[must_use]
    pub fn plan_hash(&self) -> u64 {
        let descriptor = format!(
            "synthetic {:?}\nseed {:#018x}\nshape {}\n",
            self.name, self.base_seed, self.shape
        );
        fnv1a_64(descriptor.as_bytes())
    }

    /// Total cells in the sweep.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.shape.cell_count()
    }

    /// The coordinates of the `linear`-th cell in canonical (config-major)
    /// order.
    #[must_use]
    pub fn coordinates(&self, linear: usize) -> (usize, usize, usize, usize) {
        let replicate = linear % self.shape.replicates;
        let rest = linear / self.shape.replicates;
        let scenario = rest % self.shape.scenarios;
        let rest = rest / self.shape.scenarios;
        let world = rest % self.shape.worlds;
        let config = rest / self.shape.worlds;
        (config, world, scenario, replicate)
    }

    /// Generates the `linear`-th cell: a judged attack outcome drawn
    /// deterministically from the cell seed, with a seed-derived synthetic
    /// wall time (so summaries are bit-reproducible at any worker count).
    #[must_use]
    pub fn cell(&self, linear: usize) -> CellResult {
        let (config, world, scenario, replicate) = self.coordinates(linear);
        let seed = cell_seed(self.base_seed, config, world, scenario, replicate);
        let draw = synthetic_mix(seed);
        let detected = draw % 1000 < synthetic_detect_per_mille(config, scenario);
        // Undetected attacks usually reach their goal; file permissions
        // stop the rest.
        let succeeded = !detected && synthetic_mix(draw) % 1000 < 940;
        let observed = if detected {
            "detected"
        } else if succeeded {
            "SUCCEEDED"
        } else {
            "failed"
        };
        let expected = if synthetic_detect_per_mille(config, scenario) >= 500 {
            "detected"
        } else {
            "SUCCEEDED"
        };
        let wall_nanos = 200_000 + synthetic_mix(draw ^ 0xA5A5) % 1_800_000;
        CellResult {
            spec: CellSpec {
                config_index: config,
                world_index: world,
                scenario_index: scenario,
                replicate,
                config_label: SYNTHETIC_CONFIGS[config].to_string(),
                world_label: SYNTHETIC_WORLDS[world].to_string(),
                scenario_label: SYNTHETIC_ATTACKS[scenario].to_string(),
                seed,
            },
            outcome: CellOutcome {
                exit_status: (!detected).then_some(0),
                alarm: detected.then(|| "synthetic divergence alarm".to_string()),
                fault: None,
                metrics: ExecutionMetrics {
                    variants: 2,
                    total_instructions: 1_000 + draw % 100,
                    syscalls: 12,
                    monitor_checks: 4,
                    detection_calls: 2,
                    io_bytes: 512,
                },
            },
            exchanges: Vec::new(),
            transform_stats: nvariant_transform::TransformStats::default(),
            verdict: Some(CellVerdict {
                observed: observed.to_string(),
                expected: expected.to_string(),
            }),
            checked: None,
            wall: Duration::from_nanos(wall_nanos),
        }
    }

    /// Runs the sweep through the streaming fold: workers claim linear
    /// indices in batches, fold cells into thread-local aggregators, and
    /// the locals merge — peak memory is O(workers × aggregator), however
    /// many cells the sweep has. `total_wall` is the sum of the synthetic
    /// per-cell walls, so the summary is deterministic.
    #[must_use]
    pub fn run_streamed(&self, workers: usize) -> StreamingAggregator {
        const BATCH: usize = 1024;
        let total = self.cell_count();
        let workers = workers.clamp(1, total.max(1));
        let make_aggregator = || {
            StreamingAggregator::new(
                self.name.clone(),
                self.base_seed,
                self.plan_hash(),
                self.shape,
            )
        };
        if workers <= 1 {
            let mut aggregator = make_aggregator();
            for linear in 0..total {
                let cell = self.cell(linear);
                aggregator.add_wall(cell.wall);
                aggregator.absorb(&cell);
            }
            return aggregator;
        }
        let cursor = std::sync::atomic::AtomicUsize::new(0);
        let mut locals: Vec<StreamingAggregator> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let cursor = &cursor;
                    scope.spawn(move || {
                        let mut local = make_aggregator();
                        loop {
                            let start =
                                cursor.fetch_add(BATCH, std::sync::atomic::Ordering::Relaxed);
                            if start >= total {
                                break;
                            }
                            for linear in start..(start + BATCH).min(total) {
                                let cell = self.cell(linear);
                                local.add_wall(cell.wall);
                                local.absorb(&cell);
                            }
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                locals.push(handle.join().expect("synthetic worker panicked"));
            }
        });
        let mut merged = locals.pop().expect("at least one worker");
        for local in &locals {
            merged.merge(local);
        }
        merged.set_workers(workers);
        merged
    }

    /// Runs the sweep the way the pre-streaming pipeline would have:
    /// materializing every [`CellResult`] into one report. This exists as
    /// the control arm of the CI memory experiment — at 10^6 cells its
    /// allocation profile exceeds an address-space cap the streaming fold
    /// runs comfortably under.
    #[must_use]
    pub fn run_materialized(&self, workers: usize) -> CampaignReport {
        let total = self.cell_count();
        let indices: Vec<usize> = (0..total).collect();
        let cells = crate::engine::run_parallel(indices, workers, |_, linear| self.cell(linear));
        let total_wall = cells.iter().map(|c| c.wall).sum();
        CampaignReport::new(
            self.name.clone(),
            self.base_seed,
            self.plan_hash(),
            self.shape,
            workers.max(1),
            cells,
            total_wall,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_64_and_within_error_above() {
        for v in 0..64u64 {
            let index = LatencyHistogram::bucket_index(v);
            assert_eq!(LatencyHistogram::bucket_floor(index), v);
        }
        for v in [
            64,
            65,
            127,
            128,
            1000,
            12_345,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let index = LatencyHistogram::bucket_index(v);
            let floor = LatencyHistogram::bucket_floor(index);
            assert!(floor <= v, "floor {floor} above value {v}");
            #[allow(clippy::cast_precision_loss)]
            let error = (v - floor) as f64 / v as f64;
            assert!(
                error < QUANTILE_RELATIVE_ERROR,
                "value {v} bucket floor {floor} error {error}"
            );
            // Floors map back to their own bucket.
            assert_eq!(LatencyHistogram::bucket_index(floor), index);
        }
    }

    #[test]
    fn bucket_index_is_monotone_over_octave_boundaries() {
        let mut previous = 0;
        for v in 1..100_000u64 {
            let index = LatencyHistogram::bucket_index(v);
            assert!(index >= previous, "index regressed at {v}");
            previous = index;
        }
    }

    #[test]
    fn histogram_merge_is_exact_and_order_independent() {
        let values: Vec<u64> = (0..500).map(|i| synthetic_mix(i) % 10_000_000).collect();
        let mut whole = LatencyHistogram::new();
        for v in &values {
            whole.record(Duration::from_nanos(*v));
        }
        let (first, second) = values.split_at(200);
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in first {
            a.record(Duration::from_nanos(*v));
        }
        for v in second.iter().rev() {
            b.record(Duration::from_nanos(*v));
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole);
        assert_eq!(ba, whole);
        assert_eq!(whole.count(), 500);
    }

    #[test]
    fn quantiles_are_nearest_rank_bucket_floors() {
        let mut histogram = LatencyHistogram::new();
        for v in 1..=100u64 {
            histogram.record(Duration::from_nanos(v));
        }
        // Values 1..=63 are exact buckets; 50 is its own bucket floor.
        assert_eq!(histogram.quantile(50), Some(Duration::from_nanos(50)));
        // 95 lives in the bucket [94, 96): floor 94.
        let p95 = histogram.quantile(95).unwrap().as_nanos() as u64;
        assert!(p95 <= 95 && 95 - p95 <= 2, "p95 floor {p95}");
        assert_eq!(LatencyHistogram::new().quantile(50), None);
    }

    #[test]
    fn wilson_interval_brackets_the_proportion() {
        let (low, high) = wilson_95(8, 10);
        assert!(low < 0.8 && 0.8 < high, "({low}, {high})");
        assert!(low > 0.4 && high < 1.0, "({low}, {high})");
        assert_eq!(wilson_95(0, 0), (0.0, 0.0));
        let (zero_low, zero_high) = wilson_95(0, 20);
        assert_eq!(zero_low, 0.0);
        assert!(zero_high > 0.0 && zero_high < 0.25, "{zero_high}");
        let (full_low, full_high) = wilson_95(20, 20);
        assert_eq!(full_high, 1.0);
        assert!(full_low > 0.75, "{full_low}");
    }

    #[test]
    fn coordinate_walk_matches_materialized_enumeration() {
        let shape = PlanShape {
            configs: 2,
            worlds: 3,
            scenarios: 2,
            replicates: 2,
        };
        let walked: Vec<_> = CoordinateWalk::new(shape).collect();
        assert_eq!(walked, shape.coordinates());
        let empty = PlanShape {
            configs: 0,
            worlds: 1,
            scenarios: 1,
            replicates: 1,
        };
        assert_eq!(CoordinateWalk::new(empty).next(), None);
    }

    #[test]
    fn synthetic_cells_are_deterministic_and_linear_indexing_is_canonical() {
        let sweep = SyntheticSweep::new(2);
        assert_eq!(sweep.cell_count(), 5 * 4 * 3 * 2);
        let walk: Vec<_> = CoordinateWalk::new(sweep.shape).collect();
        for (linear, expected) in walk.iter().enumerate() {
            assert_eq!(sweep.coordinates(linear), *expected, "index {linear}");
        }
        let a = sweep.cell(17);
        let b = sweep.cell(17);
        assert_eq!(a, b);
        assert_eq!(a.canonical_line(), b.canonical_line());
        // Every cell is judged.
        assert!(a.verdict.is_some());
    }

    #[test]
    fn synthetic_streamed_fold_is_worker_count_invariant() {
        let sweep = SyntheticSweep::new(7);
        let serial = sweep.run_streamed(1);
        let parallel = sweep.run_streamed(4);
        assert_eq!(serial.render_surface(), parallel.render_surface());
        assert_eq!(serial.cells(), sweep.cell_count());
        assert_eq!(parallel.cells(), sweep.cell_count());
        // The summary differs only in the declared worker count.
        assert_eq!(
            serial
                .render_summary()
                .replace("on 1 workers", "on N workers"),
            parallel
                .render_summary()
                .replace("on 4 workers", "on N workers"),
        );
    }

    #[test]
    fn synthetic_streamed_matches_materialized_byte_for_byte() {
        let sweep = SyntheticSweep::new(3);
        let streamed = sweep.run_streamed(2);
        let materialized = sweep.run_materialized(2);
        assert_eq!(streamed.render_summary(), materialized.render_summary());
        assert_eq!(streamed.render_surface(), materialized.render_surface());
        // Protected configurations detect, unprotected ones leak — the
        // surface's headline shape.
        let surface = streamed.render_surface();
        assert!(surface.contains("config=\"unprotected\""), "{surface}");
        assert!(surface.starts_with("surface campaign=\"synthetic-sweep\""));
    }

    #[test]
    fn aggregator_detects_verdict_accounting() {
        let sweep = SyntheticSweep::new(1);
        let aggregator = sweep.run_streamed(1);
        assert_eq!(aggregator.judged_cells(), sweep.cell_count());
        // Probabilistic outcomes disagree with the deterministic
        // prediction sometimes, never always.
        assert!(aggregator.verdict_mismatches() < sweep.cell_count());
    }
}
