//! `nvariant_campaign` — the build-once/run-many campaign engine.
//!
//! The core crate's [`CompiledSystem`](nvariant::CompiledSystem) splits
//! deployment into an expensive `compile()` (parse → transform → compile →
//! provision) and a cheap `instantiate()`. This crate puts a **campaign**
//! on top: a matrix of (deployment configuration × scenario × replicate)
//! cells that shares one compiled artifact per configuration and executes
//! the cells across a scoped worker pool, aggregating the results into a
//! [`CampaignReport`].
//!
//! Determinism is a design invariant: each cell's seed is derived from the
//! campaign's base seed and the cell's matrix coordinates alone
//! ([`cell_seed`]), results are collected in canonical config-major order,
//! and [`CampaignReport::canonical_text`] serializes only
//! schedule-independent content — so the same campaign produces
//! byte-identical canonical output at any worker count.
//!
//! # Example
//!
//! ```
//! use nvariant::{DeploymentConfig, NVariantSystemBuilder};
//! use nvariant_campaign::{Campaign, Scenario};
//! use std::sync::Arc;
//!
//! let server = r#"
//!     fn main() -> int {
//!         var sock: int; var conn: int; var request: buf[128];
//!         sock = socket(); bind(sock, 80); listen(sock); setuid(48);
//!         conn = accept(sock);
//!         while (conn >= 0) {
//!             recv(conn, &request, 127);
//!             send_str(conn, "HTTP/1.0 200 OK\r\n\r\nok");
//!             close(conn);
//!             conn = accept(sock);
//!         }
//!         return 0;
//!     }
//! "#;
//! let compiled = Arc::new(
//!     NVariantSystemBuilder::from_source(server)?
//!         .config(DeploymentConfig::TwoVariantUid)
//!         .compile()?,
//! );
//! let report = Campaign::new("smoke")
//!     .config(compiled)
//!     .scenario(Scenario::fixed_requests(
//!         "ping",
//!         vec![b"GET / HTTP/1.0\r\n\r\n".to_vec()],
//!     ))
//!     .replicates(3)
//!     .run(2);
//! assert_eq!(report.cells.len(), 3);
//! assert!((report.survival_rate() - 1.0).abs() < 1e-9);
//! # Ok::<(), nvariant::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod cell;
pub mod engine;
pub mod exchange;
pub mod report;

pub use campaign::{serve_requests, Campaign, CellRun, Scenario};
pub use cell::{CellResult, CellSpec, CellVerdict, RequestTally};
pub use engine::{cell_seed, run_parallel};
pub use exchange::ServedRequest;
pub use report::CampaignReport;

#[cfg(test)]
mod send_tests {
    //! Compile-time proof that the building blocks of parallel campaigns
    //! cross thread boundaries (the satellite "audit for incidental
    //! non-`Send` state" check: `Rc`, raw pointers or thread-bound state in
    //! any of these types would fail this module at compile time).

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn parallel_instantiation_building_blocks_are_send() {
        assert_send::<nvariant_vm::Process>();
        assert_send::<nvariant_simos::OsKernel>();
        assert_send::<nvariant_monitor::NVariantMonitor>();
        assert_send::<nvariant::CompiledSystem>();
        assert_send::<nvariant::RunnableSystem>();
        assert_send::<crate::Campaign>();
        assert_send::<crate::CampaignReport>();
        // Shared read-only across the worker pool.
        assert_sync::<nvariant::CompiledSystem>();
        assert_sync::<crate::Campaign>();
    }
}
