//! `nvariant_campaign` — experiment plans over the build-once/run-many
//! engine.
//!
//! The core crate's [`CompiledSystem`](nvariant::CompiledSystem) splits
//! deployment into an expensive `compile()` (parse → transform → compile →
//! provision) and a cheap `instantiate()`. This crate puts an explicit
//! **experiment plan** on top: a [`CampaignPlan`] is a matrix of
//! (deployment configuration × world × scenario × replicate) cells, where
//! worlds are named [`WorldTemplate`](nvariant_simos::WorldTemplate)s —
//! alternative environments (account databases, document roots, injected
//! filesystem faults) the same compiled artifacts deploy into via
//! [`CompiledSystem::instantiate_in`](nvariant::CompiledSystem::instantiate_in).
//!
//! Determinism is a design invariant, and it now extends across process
//! boundaries:
//!
//! * each cell's seed derives from the plan's base seed and the cell's
//!   matrix coordinates alone ([`cell_seed`]);
//! * [`CampaignPlan::cells`] is a *pure function* of the plan, so
//!   [`CampaignPlan::shard`] can split the matrix round-robin across
//!   processes that never communicate;
//! * every report carries the plan's canonical hash
//!   ([`CampaignPlan::plan_hash`]: name + seed + full axes) and matrix
//!   shape, so [`CampaignReport::merge`] is *validation-only*: it rejects
//!   shards from differently-shaped plans and incomplete shard sets
//!   (naming the exact missing cells) without re-running anything — and
//!   [`CampaignReport::canonical_text`] of a merged report is
//!   byte-identical to an unsharded run at any worker count.
//!
//! # Example
//!
//! ```
//! use nvariant::{DeploymentConfig, NVariantSystemBuilder};
//! use nvariant_campaign::{CampaignPlan, CampaignReport, Scenario};
//! use nvariant_simos::WorldTemplate;
//! use std::sync::Arc;
//!
//! let server = r#"
//!     fn main() -> int {
//!         var sock: int; var conn: int; var request: buf[128];
//!         sock = socket(); bind(sock, 80); listen(sock); setuid(48);
//!         conn = accept(sock);
//!         while (conn >= 0) {
//!             recv(conn, &request, 127);
//!             send_str(conn, "HTTP/1.0 200 OK\r\n\r\nok");
//!             close(conn);
//!             conn = accept(sock);
//!         }
//!         return 0;
//!     }
//! "#;
//! let compiled = Arc::new(
//!     NVariantSystemBuilder::from_source(server)?
//!         .config(DeploymentConfig::TwoVariantUid)
//!         .compile()?,
//! );
//! let plan = CampaignPlan::new("smoke")
//!     .config(compiled)
//!     .world(WorldTemplate::standard())
//!     .world(WorldTemplate::alternate_accounts())
//!     .scenario(Scenario::fixed_requests(
//!         "ping",
//!         vec![b"GET / HTTP/1.0\r\n\r\n".to_vec()],
//!     ))
//!     .replicates(3);
//!
//! // 1 config x 2 worlds x 1 scenario x 3 replicates.
//! assert_eq!(plan.cells().len(), 6);
//! let whole = plan.run(2);
//! assert!((whole.survival_rate() - 1.0).abs() < 1e-9);
//!
//! // Shard the same plan across two "processes" and merge: byte-identical.
//! let merged = CampaignReport::merge([
//!     plan.run_shard(0, 2, 1),
//!     plan.run_shard(1, 2, 1),
//! ])?;
//! assert_eq!(merged.canonical_text(), whole.canonical_text());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cell;
pub mod engine;
pub mod exchange;
pub mod plan;
pub mod report;
pub mod shardio;
pub mod streaming;

pub use cache::CellCache;
pub use cell::{CellOutcome, CellResult, CellSpec, CellVerdict, CheckSummary, RequestTally};
pub use engine::{cell_seed, run_parallel};
pub use exchange::ServedRequest;
pub use nvariant::CacheStats;
pub use plan::{serve_requests, CampaignPlan, CellRun, Scenario};
pub use report::{CampaignReport, MergeError, PlanShape, WallPercentiles};
pub use shardio::{ShardCursor, ShardHeader, ShardParseError, ShardWriter};
pub use streaming::{
    CoordinateWalk, GroupTally, LatencyHistogram, ShardMerger, StreamMergeError,
    StreamingAggregator, SyntheticSweep, QUANTILE_RELATIVE_ERROR,
};

#[cfg(test)]
mod send_tests {
    //! Compile-time proof that the building blocks of parallel campaigns
    //! cross thread boundaries (the satellite "audit for incidental
    //! non-`Send` state" check: `Rc`, raw pointers or thread-bound state in
    //! any of these types would fail this module at compile time).

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn parallel_instantiation_building_blocks_are_send() {
        assert_send::<nvariant_vm::Process>();
        assert_send::<nvariant_simos::OsKernel>();
        assert_send::<nvariant_simos::WorldTemplate>();
        assert_send::<nvariant_monitor::NVariantMonitor>();
        assert_send::<nvariant::CompiledSystem>();
        assert_send::<nvariant::RunnableSystem>();
        assert_send::<crate::CampaignPlan>();
        assert_send::<crate::CampaignReport>();
        // Shared read-only across the worker pool.
        assert_sync::<nvariant::CompiledSystem>();
        assert_sync::<nvariant_simos::WorldTemplate>();
        assert_sync::<crate::CampaignPlan>();
    }
}
