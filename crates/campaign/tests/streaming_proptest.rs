//! Property tests for the streaming result path: over arbitrary cell
//! permutations and arbitrary shard splits, the streamed fold renders the
//! same summary and surface bytes as the materialized path, the latency
//! sketch's merge is associative and commutative, and its quantiles stay
//! within the documented relative error of the exact nearest-rank values.

use nvariant_campaign::{
    CampaignReport, LatencyHistogram, ShardCursor, ShardMerger, StreamingAggregator,
    SyntheticSweep, QUANTILE_RELATIVE_ERROR,
};
use proptest::prelude::*;
use std::time::Duration;

/// A small synthetic matrix: `60 × replicates` judged cells, cheap enough
/// for many proptest cases but exercising every label and verdict path.
fn sweep(replicates: usize) -> SyntheticSweep {
    SyntheticSweep::new(replicates)
}

/// The materialized control arm at 1 worker.
fn materialized(sweep: &SyntheticSweep) -> CampaignReport {
    sweep.run_materialized(1)
}

/// A seed-derived pseudo-random vector (the vendored proptest has no
/// collection strategies): `len` draws from an LCG stepped off `seed`,
/// mapped into `1..=max`.
fn derived_values(seed: u64, len: usize, max: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 11) % max + 1
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Folding the cells in ANY order yields byte-identical summary and
    /// surface output to the materialized in-memory path: the aggregator
    /// state is order-independent by construction.
    #[test]
    fn any_fold_order_matches_the_materialized_bytes(
        replicates in 1usize..4,
        seed in any::<u64>(),
    ) {
        let sweep = sweep(replicates);
        let total = sweep.cell_count();
        // A seed-derived permutation of the linear cell indices.
        let mut order: Vec<usize> = (0..total).collect();
        let mut state = seed | 1;
        for i in (1..total).rev() {
            state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            #[allow(clippy::cast_possible_truncation)]
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut aggregator = StreamingAggregator::new(
            sweep.name.clone(),
            sweep.base_seed,
            sweep.plan_hash(),
            sweep.shape,
        );
        for linear in order {
            let cell = sweep.cell(linear);
            aggregator.add_wall(cell.wall);
            aggregator.absorb(&cell);
        }
        let report = materialized(&sweep);
        prop_assert_eq!(aggregator.render_summary(), report.render_summary());
        prop_assert_eq!(aggregator.render_surface(), report.render_surface());
    }

    /// Splitting the cells across ANY shard assignment (each shard keeps
    /// canonical order internally; shards may be empty), serializing each
    /// shard through the interchange codec, and k-way stream-merging the
    /// cursors yields byte-identical summary and surface output to the
    /// materialized path.
    #[test]
    fn any_shard_split_streams_back_the_materialized_bytes(
        replicates in 1usize..3,
        assignment_seed in any::<u64>(),
    ) {
        let sweep = sweep(replicates);
        let total = sweep.cell_count();
        let shards = 4;
        let assignment = derived_values(assignment_seed, total, shards as u64);
        let mut shard_cells: Vec<Vec<_>> = vec![Vec::new(); shards];
        for (linear, assigned) in assignment.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let shard = (assigned - 1) as usize;
            shard_cells[shard].push(sweep.cell(linear));
        }
        let shard_texts: Vec<String> = shard_cells
            .into_iter()
            .map(|cells| {
                let wall = cells.iter().map(|c| c.wall).sum();
                CampaignReport::new(
                    sweep.name.clone(),
                    sweep.base_seed,
                    sweep.plan_hash(),
                    sweep.shape,
                    1,
                    cells,
                    wall,
                )
                .to_shard_text()
            })
            .collect();
        let cursors: Vec<_> = shard_texts
            .iter()
            .map(|text| ShardCursor::new(text.as_bytes()).expect("own shard text parses"))
            .collect();
        let mut merger = ShardMerger::new(cursors).expect("own shards merge");
        let mut aggregator = StreamingAggregator::from_header(merger.header());
        while let Some(cell) = merger.next_cell().expect("merge streams cleanly") {
            aggregator.absorb(&cell);
        }
        prop_assert_eq!(aggregator.cells(), total);
        let report = materialized(&sweep);
        prop_assert_eq!(aggregator.render_summary(), report.render_summary());
        prop_assert_eq!(aggregator.render_surface(), report.render_surface());
    }

    /// Histogram merge is exact: associative, commutative, and equal to
    /// recording the union directly — order and grouping never matter.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        seed_c in any::<u64>(),
        len_a in 0usize..80,
        len_b in 0usize..80,
        len_c in 0usize..80,
    ) {
        let a = derived_values(seed_a, len_a, 5_000_000_000);
        let b = derived_values(seed_b, len_b, 5_000_000_000);
        let c = derived_values(seed_c, len_c, 5_000_000_000);
        let histogram = |values: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in values {
                h.record(Duration::from_nanos(v));
            }
            h
        };
        let (ha, hb, hc) = (histogram(&a), histogram(&b), histogram(&c));

        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Exactness: any grouping equals recording the union directly.
        let union: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&ab_c, &histogram(&union));
    }

    /// Sketch quantiles never overestimate and stay within the documented
    /// relative error of the exact nearest-rank values.
    #[test]
    fn quantiles_stay_within_the_documented_error_bound(
        seed in any::<u64>(),
        len in 1usize..200,
    ) {
        let values = derived_values(seed, len, 10_000_000_000);
        let mut histogram = LatencyHistogram::new();
        for &v in &values {
            histogram.record(Duration::from_nanos(v));
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for percent in [50u64, 95, 99] {
            let sketch = histogram
                .quantile(percent)
                .expect("non-empty histogram")
                .as_nanos();
            #[allow(clippy::cast_possible_truncation)]
            let rank = ((sorted.len() as u64 * percent).div_ceil(100).max(1) as usize) - 1;
            let exact = u128::from(sorted[rank.min(sorted.len() - 1)]);
            prop_assert!(
                sketch <= exact,
                "p{percent}: sketch {sketch} overestimates exact {exact}"
            );
            #[allow(clippy::cast_precision_loss)]
            let error = (exact - sketch) as f64 / exact as f64;
            prop_assert!(
                error < QUANTILE_RELATIVE_ERROR,
                "p{percent}: sketch {sketch} vs exact {exact} error {error}"
            );
        }
    }
}
