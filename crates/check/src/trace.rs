//! Counterexample traces: the per-step actions the explorer chose, the
//! syscalls they produced, and a deterministic text rendering.

use crate::property::Property;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The annotations the explorer attaches to one synchronization step: an
/// optional attacker move before the step, and an optional receive cap
/// (schedule choice) for the step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// Apply the target's attacker move before this step (at most one move
    /// per trace — the one-shot corruption model).
    pub corrupt: bool,
    /// Cap the bytes a `recv` at this step may deliver (the scheduling
    /// freedom the kernel has in delivering network input).
    pub recv_cap: Option<usize>,
}

impl Action {
    /// Returns `true` for the default annotation (no move, no cap) — the
    /// step the benign deterministic schedule would take.
    #[must_use]
    pub fn is_default(self) -> bool {
        self == Action::default()
    }
}

/// One rendered step of a counterexample trace.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Step index (0-based synchronization point).
    pub index: usize,
    /// The explorer's annotation for this step.
    pub action: Action,
    /// The syscall processed at this step (`Debug` form), `"-"` when the
    /// step terminated before reaching one.
    pub sysno: String,
    /// Alarms raised during this step.
    pub alarms: usize,
}

/// A minimal counterexample: the shortest annotated schedule prefix the
/// minimizer could not shrink further that still violates the property.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The violated property.
    pub property: Property,
    /// Configuration label of the checked system.
    pub config_label: String,
    /// World template name the system was deployed into.
    pub world_label: String,
    /// The annotated steps, in execution order, up to the violating step.
    pub steps: Vec<TraceStep>,
    /// What went wrong at the final step.
    pub violation: String,
}

impl Counterexample {
    /// Renders the trace as deterministic, line-oriented text: one header,
    /// one line per step, one violation line. Two identical counterexamples
    /// render byte-identically.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "counterexample {} config={:?} world={:?} steps={}",
            self.property.key(),
            self.config_label,
            self.world_label,
            self.steps.len()
        );
        for step in &self.steps {
            let corrupt = if step.action.corrupt { "corrupt" } else { "-" };
            let cap = step
                .action
                .recv_cap
                .map_or_else(|| "-".to_string(), |c| c.to_string());
            let _ = writeln!(
                out,
                "step {} move={} recv_cap={} syscall={} alarms={}",
                step.index, corrupt, cap, step.sysno, step.alarms
            );
        }
        let _ = writeln!(out, "violation {}", self.violation);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counterexample {
        Counterexample {
            property: Property::UidIntegrity,
            config_label: "2-Variant UID".to_string(),
            world_label: "standard".to_string(),
            steps: vec![
                TraceStep {
                    index: 0,
                    action: Action::default(),
                    sysno: "Socket".to_string(),
                    alarms: 0,
                },
                TraceStep {
                    index: 1,
                    action: Action {
                        corrupt: true,
                        recv_cap: Some(4),
                    },
                    sysno: "SetEuid".to_string(),
                    alarms: 0,
                },
            ],
            violation: "credential call executed with corrupted uid and no alarm".to_string(),
        }
    }

    #[test]
    fn rendering_is_deterministic_and_line_oriented() {
        let c = sample();
        assert_eq!(c.render(), c.render());
        let text = c.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("counterexample P1 "));
        assert_eq!(lines[1], "step 0 move=- recv_cap=- syscall=Socket alarms=0");
        assert_eq!(
            lines[2],
            "step 1 move=corrupt recv_cap=4 syscall=SetEuid alarms=0"
        );
        assert!(lines[3].starts_with("violation "));
    }

    #[test]
    fn default_action_is_recognized() {
        assert!(Action::default().is_default());
        assert!(!Action {
            corrupt: true,
            recv_cap: None
        }
        .is_default());
        assert!(!Action {
            corrupt: false,
            recv_cap: Some(1)
        }
        .is_default());
    }
}
