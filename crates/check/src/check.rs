//! The checker interface: what to check ([`CheckTarget`]), how hard
//! ([`CheckRequest`]), and what came back ([`CheckReport`]).

use crate::property::Property;
use crate::trace::Counterexample;
use nvariant::CompiledSystem;
use nvariant_simos::WorldTemplate;
use nvariant_types::Port;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// The attacker move the explorer may inject before any synchronization
/// point (at most once per trace). Each model corresponds to one memory
/// corruption class of the paper's evaluation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackerModel {
    /// No attacker: the only branching is over schedules. Properties that
    /// quantify over attacker moves pass vacuously.
    Passive,
    /// The relative-overflow class: the same concrete value is written into
    /// each variant's *own* copy of `global` (a replicated relative write
    /// lands at the same logical object everywhere). UID reexpression makes
    /// the copies canonically divergent.
    CorruptReplicated {
        /// The corrupted global variable.
        global: String,
        /// The concrete value written.
        value: u32,
    },
    /// The absolute-write class: `value` is written at variant 0's concrete
    /// address of `global` in *every* variant. Address partitioning makes
    /// that address unmapped in the other variants.
    CorruptAbsolute {
        /// The global whose variant-0 address the attacker aims at.
        global: String,
        /// The concrete value written.
        value: u32,
    },
}

impl AttackerModel {
    /// Returns `true` if this model has a move to inject.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self, AttackerModel::Passive)
    }
}

/// An instantiated system to check: a compiled artifact, the world to deploy
/// it into, and the benign workload staged on its port.
#[derive(Clone)]
pub struct CheckTarget {
    /// The compiled artifact.
    pub system: Arc<CompiledSystem>,
    /// The world template the system is deployed into.
    pub world: WorldTemplate,
    /// Label identifying the configuration in reports.
    pub config_label: String,
    /// Benign requests preloaded on `port` before exploration starts.
    pub requests: Vec<Vec<u8>>,
    /// The port the workload arrives on.
    pub port: Port,
    /// The attacker move available to the explorer.
    pub attacker: AttackerModel,
}

/// Bounds and knobs for one check run.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckRequest {
    /// The property to check.
    pub property: Property,
    /// Maximum synchronization points per explored trace.
    pub depth: usize,
    /// Receive caps the schedule enumerator may apply at `recv` steps (the
    /// kernel's freedom to deliver network input in chunks). Empty means
    /// only the uncapped delivery is explored.
    pub recv_chunks: Vec<usize>,
    /// Hard cap on visited states; exploration stops (and the report is
    /// marked truncated) when it is hit.
    pub max_states: usize,
}

impl CheckRequest {
    /// A request for `property` at `depth` with the default schedule
    /// enumerator (one 4-byte chunk cap) and a generous state bound.
    #[must_use]
    pub fn new(property: Property, depth: usize) -> Self {
        CheckRequest {
            property,
            depth,
            recv_chunks: vec![4],
            max_states: 200_000,
        }
    }
}

/// Counters describing how much of the bounded state space one check run
/// explored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreStats {
    /// Distinct steps executed (tree nodes expanded).
    pub states_visited: u64,
    /// Branches cut because a canonically identical state had already been
    /// explored with at least as much remaining depth.
    pub states_pruned: u64,
    /// Traces that ran to group termination within the bound.
    pub terminal_runs: u64,
    /// Deepest synchronization point reached.
    pub deepest: usize,
    /// `true` if the `max_states` bound stopped exploration before the
    /// bounded space was exhausted (a Pass is then only a bounded pass).
    pub truncated: bool,
}

/// Verdict of one check run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckStatus {
    /// No violating trace exists within the bound.
    Pass,
    /// A violating trace was found (see the counterexample).
    Fail,
}

impl fmt::Display for CheckStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckStatus::Pass => write!(f, "pass"),
            CheckStatus::Fail => write!(f, "FAIL"),
        }
    }
}

/// The result of checking one property against one target.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckReport {
    /// The property checked.
    pub property: Property,
    /// Pass or fail.
    pub status: CheckStatus,
    /// Configuration label of the target.
    pub config_label: String,
    /// World the target was deployed into.
    pub world_label: String,
    /// The depth bound the exploration ran at.
    pub depth: usize,
    /// Exploration counters.
    pub stats: ExploreStats,
    /// The minimized counterexample, when the check failed.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// One-line summary for logs and CLI output.
    #[must_use]
    pub fn summary_line(&self) -> String {
        format!(
            "{} {} config={:?} world={:?} depth={} states={} pruned={} terminal={}{}",
            self.property.key(),
            self.status,
            self.config_label,
            self.world_label,
            self.depth,
            self.stats.states_visited,
            self.stats.states_pruned,
            self.stats.terminal_runs,
            if self.stats.truncated {
                " (truncated)"
            } else {
                ""
            }
        )
    }
}

/// Something that can check a property against a target. The bounded
/// explorer ([`BoundedChecker`](crate::explore::BoundedChecker)) is the one
/// implementation here; the trait exists so reports and callers do not care
/// how the verdict was obtained.
pub trait Checker {
    /// Checks `request` against `target`.
    fn check(&self, target: &CheckTarget, request: &CheckRequest) -> CheckReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_defaults_are_sane() {
        let request = CheckRequest::new(Property::BenignLockstep, 32);
        assert_eq!(request.depth, 32);
        assert!(!request.recv_chunks.is_empty());
        assert!(request.max_states > 1000);
    }

    #[test]
    fn passive_attacker_is_inactive() {
        assert!(!AttackerModel::Passive.is_active());
        assert!(AttackerModel::CorruptReplicated {
            global: "server_uid".to_string(),
            value: 0
        }
        .is_active());
    }
}
