//! The detection properties the checker verifies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A bounded-checkable property of an instantiated N-variant system, stated
/// against the paper's detection arguments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Property {
    /// **P1 — UID integrity**: no attacker move sequence reaches a
    /// credential-changing system call with a corrupted UID without the
    /// monitor raising an alarm first.
    UidIntegrity,
    /// **P2 — benign lockstep**: on benign traces (no attacker moves), the
    /// variants never diverge — no alarm is raised in any world under any
    /// explored schedule.
    BenignLockstep,
    /// **P3 — alarm before output**: after a corruption, no network output
    /// leaves the system while the group still holds root privileges unless
    /// an alarm was raised first.
    AlarmBeforeOutput,
}

impl Property {
    /// All checkable properties, in report order.
    #[must_use]
    pub fn all() -> [Property; 3] {
        [
            Property::UidIntegrity,
            Property::BenignLockstep,
            Property::AlarmBeforeOutput,
        ]
    }

    /// The short key used on command lines and in reports (`P1`/`P2`/`P3`).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Property::UidIntegrity => "P1",
            Property::BenignLockstep => "P2",
            Property::AlarmBeforeOutput => "P3",
        }
    }

    /// Parses a property key (case-insensitive `P1`/`P2`/`P3`).
    #[must_use]
    pub fn parse(key: &str) -> Option<Property> {
        match key.to_ascii_uppercase().as_str() {
            "P1" => Some(Property::UidIntegrity),
            "P2" => Some(Property::BenignLockstep),
            "P3" => Some(Property::AlarmBeforeOutput),
            _ => None,
        }
    }

    /// One-line human description.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Property::UidIntegrity => {
                "no corrupted UID reaches a credential-changing syscall without an alarm"
            }
            Property::BenignLockstep => "variants never diverge on benign traces",
            Property::AlarmBeforeOutput => {
                "an alarm precedes any privileged network output after corruption"
            }
        }
    }

    /// Whether the property explores attacker moves (P2 is a benign-trace
    /// property: the attacker is absent by definition).
    #[must_use]
    pub fn uses_attacker(self) -> bool {
        !matches!(self, Property::BenignLockstep)
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        for property in Property::all() {
            assert_eq!(Property::parse(property.key()), Some(property));
            assert_eq!(
                Property::parse(&property.key().to_lowercase()),
                Some(property)
            );
        }
        assert_eq!(Property::parse("P9"), None);
    }

    #[test]
    fn only_benign_lockstep_is_attacker_free() {
        assert!(Property::UidIntegrity.uses_attacker());
        assert!(!Property::BenignLockstep.uses_attacker());
        assert!(Property::AlarmBeforeOutput.uses_attacker());
    }
}
