//! The bounded explorer: exhaustive DFS over attacker moves and receive
//! schedules at syscall granularity, with visited-state pruning over the
//! monitor's canonical state digest, plus deterministic replay and greedy
//! counterexample minimization.

use crate::check::{
    AttackerModel, CheckReport, CheckRequest, CheckStatus, CheckTarget, Checker, ExploreStats,
};
use crate::property::Property;
use crate::trace::{Action, Counterexample, TraceStep};
use nvariant_monitor::{NVariantMonitor, StepEvent};
use nvariant_simos::Sysno;
use nvariant_types::{Fnv1a, VariantId, Word};
use std::collections::HashMap;

/// Deploys the target into its world and stages the benign workload,
/// returning the monitor at its initial synchronization state. Every call
/// returns an identical monitor — the root of the explored tree and the
/// anchor of deterministic replay.
fn instantiate(target: &CheckTarget) -> NVariantMonitor {
    let provisioned = target.system.provision_world(target.world.kernel());
    let mut monitor = target.system.instantiate_monitor_in(&provisioned);
    for request in &target.requests {
        monitor
            .kernel_mut()
            .net_mut()
            .preload_request(target.port, request.clone());
    }
    monitor
}

/// Applies the target's attacker move to the monitor's variant memories.
fn apply_attack(monitor: &mut NVariantMonitor, attacker: &AttackerModel) {
    let write = |monitor: &mut NVariantMonitor, index: usize, addr, value: u32| {
        let process = monitor.variant_process_mut(VariantId::new(index));
        if let Err(fault) = process.write_word(addr, Word::from_u32(value)) {
            // An absolute write into an unmapped partition faults that
            // variant, exactly as a wild pointer store would.
            process.set_faulted(fault);
        }
    };
    match attacker {
        AttackerModel::Passive => {}
        AttackerModel::CorruptReplicated { global, value } => {
            for index in 0..monitor.variant_count() {
                let addr = monitor
                    .variant_process(VariantId::new(index))
                    .global_addr(global);
                if let Some(addr) = addr {
                    write(monitor, index, addr, *value);
                }
            }
        }
        AttackerModel::CorruptAbsolute { global, value } => {
            let addr = monitor
                .variant_process(VariantId::new(0))
                .global_addr(global);
            if let Some(addr) = addr {
                for index in 0..monitor.variant_count() {
                    write(monitor, index, addr, *value);
                }
            }
        }
    }
}

/// Executes one annotated step against `monitor`, returning the event.
fn apply_step(monitor: &mut NVariantMonitor, target: &CheckTarget, action: Action) -> StepEvent {
    if action.corrupt {
        apply_attack(monitor, &target.attacker);
    }
    monitor.kernel_mut().net_mut().set_recv_cap(action.recv_cap);
    let event = monitor.step();
    // The cap is a per-step schedule choice; clearing it keeps the state
    // digest independent of how the state was reached.
    monitor.kernel_mut().net_mut().set_recv_cap(None);
    event
}

fn is_credential_call(sysno: Sysno) -> bool {
    matches!(
        sysno,
        Sysno::SetUid | Sysno::SetEuid | Sysno::SetGid | Sysno::SetReUid
    )
}

/// Checks whether the step that just executed violates `property`.
/// `corrupted` reflects attacker moves up to and including this step.
fn violation(
    property: Property,
    corrupted: bool,
    event: &StepEvent,
    monitor: &NVariantMonitor,
) -> Option<String> {
    match property {
        Property::BenignLockstep => {
            let alarmed = match event {
                StepEvent::Progress(obs) => obs.alarms_raised > 0,
                StepEvent::Done(outcome) => outcome.alarm.is_some(),
            };
            if alarmed {
                let alarm = monitor
                    .alarms()
                    .last()
                    .expect("alarmed step records an alarm");
                return Some(format!("alarm on benign trace: {:?}", alarm.kind));
            }
            None
        }
        Property::UidIntegrity => {
            let StepEvent::Progress(obs) = event else {
                return None;
            };
            let executed_credential_call = obs.sysno.is_some_and(is_credential_call);
            // The corrupted value actually reached the call: the variants'
            // canonicalized arguments disagreed, yet the call executed
            // without an alarm.
            if corrupted
                && executed_credential_call
                && obs.divergent_args
                && monitor.alarms().is_empty()
            {
                return Some(format!(
                    "credential call {:?} executed with corrupted uid and no alarm",
                    obs.sysno.expect("checked above")
                ));
            }
            None
        }
        Property::AlarmBeforeOutput => {
            let StepEvent::Progress(obs) = event else {
                return None;
            };
            let sent_output = obs.sysno == Some(Sysno::Send) && obs.output_delta > 0;
            let privileged = monitor
                .kernel()
                .credentials(monitor.group_pid())
                .is_ok_and(|cred| cred.euid().is_root());
            if corrupted && sent_output && privileged && monitor.alarms().is_empty() {
                return Some(format!(
                    "{} bytes of network output left a corrupted, still-privileged \
                     group with no alarm",
                    obs.output_delta
                ));
            }
            None
        }
    }
}

/// The bounded model checker: exhaustive DFS over every interleaving of
/// attacker moves and receive schedules up to the request's depth bound.
pub struct BoundedChecker;

struct Explorer<'a> {
    target: &'a CheckTarget,
    request: &'a CheckRequest,
    stats: ExploreStats,
    /// Canonical state digest → most remaining depth it was explored with.
    visited: HashMap<u64, usize>,
}

impl Explorer<'_> {
    fn visit_key(monitor: &NVariantMonitor, corrupted: bool) -> u64 {
        let mut digest = Fnv1a::new();
        digest.write_u64(monitor.state_digest());
        digest.write_u8(u8::from(corrupted));
        digest.finish()
    }

    /// DFS from `monitor` (reached via `trace`), returning the first
    /// violating trace in deterministic branch order.
    fn dfs(
        &mut self,
        monitor: &NVariantMonitor,
        trace: &[Action],
        corrupted: bool,
    ) -> Option<(Vec<Action>, String)> {
        if trace.len() >= self.request.depth {
            return None;
        }
        let try_corrupt =
            self.request.property.uses_attacker() && self.target.attacker.is_active() && !corrupted;
        let corrupt_options: &[bool] = if try_corrupt {
            &[false, true]
        } else {
            &[false]
        };
        for &corrupt in corrupt_options {
            // The uncapped schedule first, then each configured chunk cap.
            for cap_index in 0..=self.request.recv_chunks.len() {
                if self.stats.truncated {
                    return None;
                }
                if self.stats.states_visited >= self.stats_limit() {
                    self.stats.truncated = true;
                    return None;
                }
                let recv_cap = cap_index
                    .checked_sub(1)
                    .map(|i| self.request.recv_chunks[i]);
                let action = Action { corrupt, recv_cap };
                let mut child = monitor.clone();
                let event = apply_step(&mut child, self.target, action);
                // A cap on a step that did not reach a `recv` duplicates the
                // uncapped branch: skip it without counting it as a state.
                if recv_cap.is_some() && child.last_sysno() != Some(Sysno::Recv) {
                    continue;
                }
                self.stats.states_visited += 1;
                let depth_here = trace.len() + 1;
                self.stats.deepest = self.stats.deepest.max(depth_here);
                let now_corrupted = corrupted || corrupt;
                let mut next_trace = trace.to_vec();
                next_trace.push(action);
                if let Some(why) = violation(self.request.property, now_corrupted, &event, &child) {
                    return Some((next_trace, why));
                }
                if matches!(event, StepEvent::Done(_)) {
                    self.stats.terminal_runs += 1;
                    continue;
                }
                let remaining = self.request.depth - depth_here;
                let key = Self::visit_key(&child, now_corrupted);
                if self
                    .visited
                    .get(&key)
                    .is_some_and(|&seen| seen >= remaining)
                {
                    self.stats.states_pruned += 1;
                    continue;
                }
                self.visited.insert(key, remaining);
                if let Some(found) = self.dfs(&child, &next_trace, now_corrupted) {
                    return Some(found);
                }
            }
        }
        None
    }

    fn stats_limit(&self) -> u64 {
        self.request.max_states as u64
    }
}

/// The outcome of replaying an annotated trace from the target's initial
/// state: the rendered steps and the violation, if one occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Replay {
    /// One rendered step per executed action (replay stops at the violating
    /// step or at group termination, whichever comes first).
    pub steps: Vec<TraceStep>,
    /// The violation message, when the trace still violates the property.
    pub violation: Option<String>,
}

/// Deterministically replays `actions` against a fresh instantiation of
/// `target`, checking `property` after every step. Identical inputs produce
/// identical replays — this is what makes counterexamples reproducible.
#[must_use]
pub fn replay(target: &CheckTarget, property: Property, actions: &[Action]) -> Replay {
    let mut monitor = instantiate(target);
    let mut corrupted = false;
    let mut steps = Vec::new();
    for (index, action) in actions.iter().enumerate() {
        let alarms_before = monitor.alarms().len();
        let event = apply_step(&mut monitor, target, *action);
        corrupted = corrupted || action.corrupt;
        steps.push(TraceStep {
            index,
            action: *action,
            sysno: monitor
                .last_sysno()
                .map_or_else(|| "-".to_string(), |s| format!("{s:?}")),
            alarms: monitor.alarms().len() - alarms_before,
        });
        if let Some(why) = violation(property, corrupted, &event, &monitor) {
            return Replay {
                steps,
                violation: Some(why),
            };
        }
        if matches!(event, StepEvent::Done(_)) {
            break;
        }
    }
    Replay {
        steps,
        violation: None,
    }
}

/// Greedily shrinks a violating trace: every non-default annotation is reset
/// to the default step (no move, no cap) if the trace still violates without
/// it, and the tail beyond the violating step is dropped. The result is
/// 1-minimal with respect to annotation resets.
#[must_use]
pub fn minimize(
    target: &CheckTarget,
    property: Property,
    actions: &[Action],
) -> (Vec<Action>, Replay) {
    let mut best = actions.to_vec();
    let mut best_replay = replay(target, property, &best);
    assert!(
        best_replay.violation.is_some(),
        "minimize requires a violating trace"
    );
    best.truncate(best_replay.steps.len());
    let mut changed = true;
    while changed {
        changed = false;
        for index in 0..best.len() {
            if best[index].is_default() {
                continue;
            }
            // Try dropping the whole annotation, then each component alone.
            let mut candidates = vec![Action::default()];
            if best[index].corrupt && best[index].recv_cap.is_some() {
                candidates.push(Action {
                    corrupt: best[index].corrupt,
                    recv_cap: None,
                });
                candidates.push(Action {
                    corrupt: false,
                    recv_cap: best[index].recv_cap,
                });
            }
            for candidate in candidates {
                let mut attempt = best.clone();
                attempt[index] = candidate;
                let attempt_replay = replay(target, property, &attempt);
                if attempt_replay.violation.is_some() {
                    attempt.truncate(attempt_replay.steps.len());
                    best = attempt;
                    best_replay = attempt_replay;
                    changed = true;
                    break;
                }
            }
        }
    }
    (best, best_replay)
}

impl Checker for BoundedChecker {
    fn check(&self, target: &CheckTarget, request: &CheckRequest) -> CheckReport {
        let mut explorer = Explorer {
            target,
            request,
            stats: ExploreStats::default(),
            visited: HashMap::new(),
        };
        let root = instantiate(target);
        let found = explorer.dfs(&root, &[], false);
        let stats = explorer.stats;
        let (status, counterexample) = match found {
            None => (CheckStatus::Pass, None),
            Some((actions, _)) => {
                let (_, min_replay) = minimize(target, request.property, &actions);
                let counterexample = Counterexample {
                    property: request.property,
                    config_label: target.config_label.clone(),
                    world_label: target.world.name().to_string(),
                    steps: min_replay.steps,
                    violation: min_replay
                        .violation
                        .expect("minimized trace still violates"),
                };
                (CheckStatus::Fail, Some(counterexample))
            }
        };
        CheckReport {
            property: request.property,
            status,
            config_label: target.config_label.clone(),
            world_label: target.world.name().to_string(),
            depth: request.depth,
            stats,
            counterexample,
        }
    }
}
