//! Bounded model checking for N-variant detection properties.
//!
//! The campaign engine measures what a deployed N-variant system *did* on
//! concrete runs; this crate asks what it *could* do. A
//! [`CheckTarget`] names a compiled artifact, a world, and a benign
//! workload; the [`BoundedChecker`] then exhaustively explores every
//! interleaving of
//!
//! * **attacker moves** — a one-shot memory corruption from the target's
//!   [`AttackerModel`], injectable before any synchronization point, and
//! * **receive schedules** — the kernel's freedom to deliver network input
//!   in chunks ([`CheckRequest::recv_chunks`]),
//!
//! up to a depth bound, checking one of three [`Property`]s after every
//! step:
//!
//! * **P1 (UID integrity)** — no corrupted UID reaches a
//!   credential-changing syscall without an alarm;
//! * **P2 (benign lockstep)** — variants never diverge on benign traces;
//! * **P3 (alarm before output)** — an alarm precedes any privileged
//!   network output after corruption.
//!
//! States are pruned through the monitor's canonical
//! [`state_digest`](nvariant_monitor::NVariantMonitor::state_digest), so
//! schedules that converge to the same semantic state are explored once.
//! A violation is reported as a minimal [`Counterexample`]: the explorer's
//! trace is greedily shrunk ([`minimize`]) until no annotation can be
//! dropped, then rendered as deterministic, byte-stable text. Every
//! counterexample is replayable ([`replay`]) from the target's initial
//! state.
//!
//! # Example
//!
//! ```
//! use nvariant::{DeploymentConfig, NVariantSystemBuilder};
//! use nvariant_check::{
//!     AttackerModel, BoundedChecker, CheckRequest, CheckStatus, CheckTarget, Checker, Property,
//! };
//! use nvariant_simos::WorldTemplate;
//! use nvariant_types::{Port, Uid};
//! use std::sync::Arc;
//!
//! let system = NVariantSystemBuilder::from_source(
//!     "fn main() -> int { var u: uid_t; u = getuid(); return setuid(u); }",
//! )?
//! .config(DeploymentConfig::TwoVariantUid)
//! .initial_uid(Uid::ROOT)
//! .compile()?;
//! let target = CheckTarget {
//!     system: Arc::new(system),
//!     world: WorldTemplate::standard(),
//!     config_label: "2-Variant UID".to_string(),
//!     requests: Vec::new(),
//!     port: Port::HTTP,
//!     attacker: AttackerModel::Passive,
//! };
//! let report = BoundedChecker.check(&target, &CheckRequest::new(Property::BenignLockstep, 16));
//! assert_eq!(report.status, CheckStatus::Pass);
//! assert!(report.stats.states_visited > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod explore;
pub mod property;
pub mod trace;

pub use check::{
    AttackerModel, CheckReport, CheckRequest, CheckStatus, CheckTarget, Checker, ExploreStats,
};
pub use explore::{minimize, replay, BoundedChecker, Replay};
pub use property::Property;
pub use trace::{Action, Counterexample, TraceStep};

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant::{CompiledSystem, DeploymentConfig, NVariantSystemBuilder};
    use nvariant_monitor::MonitorConfig;
    use nvariant_simos::WorldTemplate;
    use nvariant_types::{Port, Uid};
    use std::sync::Arc;

    /// A miniature of the case-study server: cache the service UID in a
    /// global, then per request drop privileges, echo, and re-escalate.
    /// Corrupting `server_uid` to 0 makes the privilege drop a no-op.
    const ECHO_SERVER: &str = r"
        var server_uid: uid_t;
        fn main() -> int {
            var fd: int;
            var conn: int;
            var n: int;
            var req: buf[64];
            server_uid = 48;
            fd = socket();
            bind(fd, 80);
            listen(fd);
            conn = accept(fd);
            while (conn >= 0) {
                n = recv(conn, &req, 60);
                seteuid(server_uid);
                send(conn, &req, n);
                close(conn);
                seteuid(0);
                conn = accept(fd);
            }
            return 0;
        }
    ";

    fn compiled(config: DeploymentConfig, weakened: bool) -> Arc<CompiledSystem> {
        let mut builder = NVariantSystemBuilder::from_source(ECHO_SERVER)
            .expect("echo server parses")
            .config(config)
            .initial_uid(Uid::ROOT);
        if weakened {
            builder = builder.monitor_config(MonitorConfig::default().without_detection_checks());
        }
        Arc::new(builder.compile().expect("echo server compiles"))
    }

    fn target(config: DeploymentConfig, weakened: bool, attacker: AttackerModel) -> CheckTarget {
        let label = config.label();
        CheckTarget {
            system: compiled(config, weakened),
            world: WorldTemplate::standard(),
            config_label: label,
            requests: vec![b"hello".to_vec()],
            port: Port::HTTP,
            attacker,
        }
    }

    fn uid_attacker() -> AttackerModel {
        AttackerModel::CorruptReplicated {
            global: "server_uid".to_string(),
            value: 0,
        }
    }

    const DEPTH: usize = 40;

    #[test]
    fn benign_lockstep_holds_for_the_uid_variation() {
        let target = target(
            DeploymentConfig::TwoVariantUid,
            false,
            AttackerModel::Passive,
        );
        let report =
            BoundedChecker.check(&target, &CheckRequest::new(Property::BenignLockstep, DEPTH));
        assert_eq!(
            report.status,
            CheckStatus::Pass,
            "{}",
            report.summary_line()
        );
        assert!(report.stats.terminal_runs > 0, "{}", report.summary_line());
        assert!(!report.stats.truncated);
    }

    #[test]
    fn uid_integrity_holds_with_detection_enabled() {
        let target = target(DeploymentConfig::TwoVariantUid, false, uid_attacker());
        let report =
            BoundedChecker.check(&target, &CheckRequest::new(Property::UidIntegrity, DEPTH));
        assert_eq!(
            report.status,
            CheckStatus::Pass,
            "{}",
            report.summary_line()
        );
        assert!(report.stats.states_visited > 0);
    }

    #[test]
    fn weakened_monitor_produces_a_uid_integrity_counterexample() {
        let target = target(DeploymentConfig::TwoVariantUid, true, uid_attacker());
        let report =
            BoundedChecker.check(&target, &CheckRequest::new(Property::UidIntegrity, DEPTH));
        assert_eq!(
            report.status,
            CheckStatus::Fail,
            "{}",
            report.summary_line()
        );
        let cex = report
            .counterexample
            .expect("failure carries a counterexample");
        assert_eq!(cex.steps.iter().filter(|s| s.action.corrupt).count(), 1);
        let rendered = cex.render();
        assert!(rendered.contains("violation credential call"), "{rendered}");
        // The minimized trace must itself replay to a violation.
        let actions: Vec<Action> = cex.steps.iter().map(|s| s.action).collect();
        let replayed = replay(&target, Property::UidIntegrity, &actions);
        assert_eq!(replayed.violation.as_deref(), Some(cex.violation.as_str()));
    }

    #[test]
    fn weakened_monitor_also_fails_alarm_before_output() {
        let target = target(DeploymentConfig::TwoVariantUid, true, uid_attacker());
        let report = BoundedChecker.check(
            &target,
            &CheckRequest::new(Property::AlarmBeforeOutput, DEPTH),
        );
        assert_eq!(
            report.status,
            CheckStatus::Fail,
            "{}",
            report.summary_line()
        );
    }

    #[test]
    fn counterexamples_render_identically_across_runs() {
        let target = target(DeploymentConfig::TwoVariantUid, true, uid_attacker());
        let request = CheckRequest::new(Property::UidIntegrity, DEPTH);
        let first = BoundedChecker.check(&target, &request);
        let second = BoundedChecker.check(&target, &request);
        assert_eq!(first, second);
        assert_eq!(
            first.counterexample.expect("fails").render(),
            second.counterexample.expect("fails").render()
        );
    }

    #[test]
    fn absolute_writes_are_caught_by_address_partitioning() {
        let target = target(
            DeploymentConfig::TwoVariantAddress,
            false,
            AttackerModel::CorruptAbsolute {
                global: "server_uid".to_string(),
                value: 0,
            },
        );
        let report =
            BoundedChecker.check(&target, &CheckRequest::new(Property::UidIntegrity, DEPTH));
        assert_eq!(
            report.status,
            CheckStatus::Pass,
            "{}",
            report.summary_line()
        );
    }

    #[test]
    fn passive_targets_pass_attacker_properties_vacuously() {
        let target = target(DeploymentConfig::Unmodified, false, AttackerModel::Passive);
        for property in [Property::UidIntegrity, Property::AlarmBeforeOutput] {
            let report = BoundedChecker.check(&target, &CheckRequest::new(property, DEPTH));
            assert_eq!(
                report.status,
                CheckStatus::Pass,
                "{}",
                report.summary_line()
            );
        }
    }

    #[test]
    fn pruning_merges_converging_schedules() {
        // A request shorter than the recv chunk cap makes the capped and
        // uncapped schedules deliver identical bytes: the branches converge
        // to the same canonical state and pruning must fire.
        let mut target = target(
            DeploymentConfig::TwoVariantUid,
            false,
            AttackerModel::Passive,
        );
        target.requests = vec![b"hi".to_vec()];
        let report =
            BoundedChecker.check(&target, &CheckRequest::new(Property::BenignLockstep, DEPTH));
        assert!(report.stats.states_pruned > 0, "{}", report.summary_line());
    }
}
