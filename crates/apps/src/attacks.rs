//! The attack library: one concrete payload per attack class the paper
//! discusses, plus the machinery to run them against each configuration and
//! classify the outcome.

use crate::scenarios::{compiled_httpd_system, ScenarioOutcome, ServedRequest};
use nvariant::{DeploymentConfig, RunnableSystem};
use nvariant_campaign::{CampaignPlan, CellOutcome, CellRun, CellVerdict, Scenario};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a concrete attack, in the paper's terms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackClass {
    /// Non-control-data attack corrupting a UID value through a *relative*
    /// overflow (the Chen et al. class the UID variation targets).
    UidCorruptionRelative,
    /// UID corruption through an *absolute-address* write (the class
    /// address-space partitioning targets, aimed here at UID data).
    UidCorruptionAbsolute,
    /// Corruption of non-UID security data through an absolute-address
    /// write (outside the UID variation's protected class).
    NonUidDataCorruption,
}

/// What happened when an attack was launched against a configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackResult {
    /// The monitor raised an alarm before the attack achieved its goal.
    Detected,
    /// The attack achieved its goal without being detected.
    Succeeded,
    /// The attack neither achieved its goal nor triggered an alarm (e.g. it
    /// was stopped by ordinary file permissions).
    Failed,
}

impl fmt::Display for AttackResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackResult::Detected => write!(f, "detected"),
            AttackResult::Succeeded => write!(f, "SUCCEEDED"),
            AttackResult::Failed => write!(f, "failed"),
        }
    }
}

/// A concrete attack against the mini Apache.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attack {
    /// The attack class.
    pub class: AttackClass,
    /// Short identifier used in reports.
    pub name: String,
    /// What the attack does.
    pub description: String,
}

impl Attack {
    /// The three attacks of the evaluation matrix.
    #[must_use]
    pub fn all() -> Vec<Attack> {
        vec![
            Attack {
                class: AttackClass::UidCorruptionRelative,
                name: "uid-overflow".to_string(),
                description: "overflow the User-Agent log buffer to overwrite the cached \
                              server UID, then read /etc/shadow via path traversal while the \
                              privilege drop silently fails"
                    .to_string(),
            },
            Attack {
                class: AttackClass::UidCorruptionAbsolute,
                name: "uid-poke".to_string(),
                description: "use the arbitrary-write endpoint to overwrite the cached server \
                              UID at its absolute address, then read /etc/shadow"
                    .to_string(),
            },
            Attack {
                class: AttackClass::NonUidDataCorruption,
                name: "docroot-poke".to_string(),
                description: "use the arbitrary-write endpoint to truncate the DocumentRoot \
                              string, then read a file outside the document root"
                    .to_string(),
            },
        ]
    }

    /// Builds the request sequence for this attack against a deployed
    /// system (absolute-address attacks need the symbol addresses of
    /// variant 0, which models an attacker who has obtained them from a
    /// leak or a copy of the binary — the N-variant argument explicitly does
    /// not rely on keeping them secret).
    #[must_use]
    pub fn requests(&self, system: &RunnableSystem) -> Vec<Vec<u8>> {
        match self.class {
            AttackClass::UidCorruptionRelative => {
                // Classic NUL-byte zeroing: each overflow is one byte shorter
                // than the previous, so the copy's terminating NUL clears the
                // cached UID from its top byte down. Once `server_uid` is 0,
                // the post-log `seteuid(server_uid)` keeps the worker at
                // root, and the final traversal request reads the shadow
                // file.
                let logbuf = crate::httpd::LOGBUF_SIZE;
                let mut requests: Vec<Vec<u8>> = (0..4)
                    .map(|step| {
                        let overflow = "A".repeat(logbuf + 3 - step);
                        format!(
                            "GET /index.html HTTP/1.0\r\nHost: victim\r\nUser-Agent: {overflow}\r\n\r\n"
                        )
                        .into_bytes()
                    })
                    .collect();
                requests.push(
                    b"GET /../../../../etc/shadow HTTP/1.0\r\nHost: victim\r\nUser-Agent: curl\r\n\r\n"
                        .to_vec(),
                );
                requests
            }
            AttackClass::UidCorruptionAbsolute => {
                let addr = system
                    .global_addr("server_uid")
                    .map_or(0, nvariant_types::VirtAddr::as_u32);
                vec![
                    format!(
                        "GET /debug/poke/{addr}/0 HTTP/1.0\r\nHost: victim\r\nUser-Agent: curl\r\n\r\n"
                    )
                    .into_bytes(),
                    b"GET /../../../../etc/shadow HTTP/1.0\r\nHost: victim\r\nUser-Agent: curl\r\n\r\n"
                        .to_vec(),
                ]
            }
            AttackClass::NonUidDataCorruption => {
                let addr = system
                    .global_addr("docroot")
                    .map_or(0, nvariant_types::VirtAddr::as_u32);
                vec![
                    format!(
                        "GET /debug/poke/{addr}/0 HTTP/1.0\r\nHost: victim\r\nUser-Agent: curl\r\n\r\n"
                    )
                    .into_bytes(),
                    b"GET /etc/httpd.conf HTTP/1.0\r\nHost: victim\r\nUser-Agent: curl\r\n\r\n"
                        .to_vec(),
                ]
            }
        }
    }

    /// Classifies what the attack achieved given the served responses and
    /// the system outcome.
    #[must_use]
    pub fn evaluate(&self, scenario: &ScenarioOutcome) -> AttackResult {
        self.evaluate_parts(scenario.system.detected_attack(), &scenario.requests)
    }

    /// Like [`evaluate`](Self::evaluate), from the raw parts a campaign
    /// cell observes: whether the monitor alarmed, and the exchanges. The
    /// leak needles are world-agnostic (the shadow hashes and the
    /// `DocumentRoot` directive exist in every world template, wherever the
    /// document tree actually lives), so the same judge serves every world
    /// on a plan's environment axis.
    #[must_use]
    pub fn evaluate_parts(&self, detected: bool, exchanges: &[ServedRequest]) -> AttackResult {
        if detected {
            return AttackResult::Detected;
        }
        let leaked = |needle: &str| {
            exchanges
                .iter()
                .any(|r| String::from_utf8_lossy(r.body()).contains(needle))
        };
        let succeeded = match self.class {
            AttackClass::UidCorruptionRelative | AttackClass::UidCorruptionAbsolute => {
                leaked("EncryptedRootPasswordHash")
            }
            // Success = the server leaked its own configuration file, which
            // only the docroot truncation makes reachable. Match the
            // directive, not a hardcoded path: worlds relocate the tree.
            AttackClass::NonUidDataCorruption => leaked("DocumentRoot /"),
        };
        if succeeded {
            AttackResult::Succeeded
        } else {
            AttackResult::Failed
        }
    }

    /// The result the paper's arguments predict for this attack under the
    /// given configuration (used by the integration tests and by the attack
    /// matrix report to flag discrepancies).
    #[must_use]
    pub fn expected_result(&self, config: &DeploymentConfig) -> AttackResult {
        let protects_uid = matches!(config, DeploymentConfig::TwoVariantUid)
            || matches!(
                config,
                DeploymentConfig::Custom { transform_uids: true, variants, .. } if *variants > 1
            );
        let protects_addresses = matches!(config, DeploymentConfig::TwoVariantAddress)
            || matches!(
                config,
                DeploymentConfig::Custom { variation, variants, .. }
                    if *variants > 1 && variation.target_type().contains("Address")
            );
        match self.class {
            AttackClass::UidCorruptionRelative => {
                if protects_uid {
                    AttackResult::Detected
                } else {
                    AttackResult::Succeeded
                }
            }
            AttackClass::UidCorruptionAbsolute => {
                if protects_uid || protects_addresses {
                    AttackResult::Detected
                } else {
                    AttackResult::Succeeded
                }
            }
            AttackClass::NonUidDataCorruption => {
                if protects_addresses {
                    AttackResult::Detected
                } else {
                    AttackResult::Succeeded
                }
            }
        }
    }
}

/// The outcome of launching one attack against one configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttackOutcome {
    /// The attack name.
    pub attack: String,
    /// The attack class.
    pub class: AttackClass,
    /// The configuration label.
    pub config_label: String,
    /// What happened.
    pub result: AttackResult,
    /// What the paper's arguments predict.
    pub expected: AttackResult,
    /// The alarm message, when one was raised.
    pub alarm: Option<String>,
}

impl AttackOutcome {
    /// Returns `true` if the observed result matches the prediction.
    #[must_use]
    pub fn matches_expectation(&self) -> bool {
        self.result == self.expected
    }
}

/// Wraps an attack as a judged campaign [`Scenario`]: the request generator
/// crafts the payload against the freshly instantiated system (absolute
/// attacks read symbol addresses from it) and the judge records the
/// observed result next to the paper's prediction.
#[must_use]
pub fn attack_scenario(attack: &Attack) -> Scenario {
    let generator = attack.clone();
    let judge = attack.clone();
    Scenario::new(attack.name.clone(), move |system, _seed| {
        generator.requests(system)
    })
    .with_judge(move |config, run: CellRun<'_>| CellVerdict {
        observed: judge
            .evaluate_parts(run.outcome.detected_attack(), run.exchanges)
            .to_string(),
        expected: judge.expected_result(config).to_string(),
    })
}

/// Declares the full attack matrix — every attack of [`Attack::all`]
/// against every supplied configuration — as a plan over the cached
/// compiled artifacts.
#[must_use]
pub fn attack_campaign(configs: &[DeploymentConfig]) -> CampaignPlan {
    let mut plan = crate::campaigns::httpd_campaign("attack-matrix", configs);
    for attack in Attack::all() {
        plan = plan.scenario(attack_scenario(&attack));
    }
    plan
}

fn outcome_from_parts(
    attack: &Attack,
    config: &DeploymentConfig,
    outcome: &CellOutcome,
    exchanges: &[ServedRequest],
) -> AttackOutcome {
    AttackOutcome {
        attack: attack.name.clone(),
        class: attack.class,
        config_label: config.label(),
        result: attack.evaluate_parts(outcome.detected_attack(), exchanges),
        expected: attack.expected_result(config),
        alarm: outcome.alarm.clone(),
    }
}

/// Launches `attack` against the mini Apache deployed under `config`
/// (a one-cell plan over the cached compiled artifact).
#[must_use]
pub fn run_attack(config: &DeploymentConfig, attack: &Attack) -> AttackOutcome {
    let report = CampaignPlan::new("attack")
        .config(compiled_httpd_system(config))
        .scenario(attack_scenario(attack))
        .run(1);
    let cell = &report.cells[0];
    outcome_from_parts(attack, config, &cell.outcome, &cell.exchanges)
}

/// Runs every attack against every supplied configuration, in parallel
/// across the machine's cores, returning rows in attack-major order (the
/// order the paper's matrix is read in).
#[must_use]
pub fn attack_matrix(configs: &[DeploymentConfig]) -> Vec<AttackOutcome> {
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    attack_matrix_with_workers(configs, workers)
}

/// [`attack_matrix`] with an explicit worker count (the result is identical
/// at any worker count).
#[must_use]
pub fn attack_matrix_with_workers(
    configs: &[DeploymentConfig],
    workers: usize,
) -> Vec<AttackOutcome> {
    attack_outcomes_from_report(&attack_campaign(configs).run(workers), configs)
}

/// Reads an [`attack_campaign`] report back into attack-major
/// [`AttackOutcome`] rows (the one place that knows how to transpose the
/// campaign's canonical config-major cell order).
///
/// # Panics
///
/// Panics if `report` did not come from [`attack_campaign`] over exactly
/// `configs` (cell count or coordinates disagree).
#[must_use]
pub fn attack_outcomes_from_report(
    report: &nvariant_campaign::CampaignReport,
    configs: &[DeploymentConfig],
) -> Vec<AttackOutcome> {
    let attacks = Attack::all();
    assert_eq!(
        report.cells.len(),
        configs.len() * attacks.len(),
        "report does not match an attack campaign over these configs"
    );
    let mut rows = Vec::with_capacity(report.cells.len());
    // Plan cells are canonical config-major order with one implicit world
    // and one replicate; the matrix reads attack-major, so transpose by
    // direct indexing.
    for (scenario_index, attack) in attacks.iter().enumerate() {
        for (config_index, config) in configs.iter().enumerate() {
            let cell = &report.cells[config_index * attacks.len() + scenario_index];
            assert_eq!(cell.spec.config_index, config_index);
            assert_eq!(cell.spec.world_index, 0);
            assert_eq!(cell.spec.scenario_index, scenario_index);
            rows.push(outcome_from_parts(
                attack,
                config,
                &cell.outcome,
                &cell.exchanges,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_catalogue_and_expectations() {
        let attacks = Attack::all();
        assert_eq!(attacks.len(), 3);
        let uid_overflow = &attacks[0];
        assert_eq!(
            uid_overflow.expected_result(&DeploymentConfig::Unmodified),
            AttackResult::Succeeded
        );
        assert_eq!(
            uid_overflow.expected_result(&DeploymentConfig::TwoVariantAddress),
            AttackResult::Succeeded
        );
        assert_eq!(
            uid_overflow.expected_result(&DeploymentConfig::TwoVariantUid),
            AttackResult::Detected
        );
        let docroot = &attacks[2];
        assert_eq!(
            docroot.expected_result(&DeploymentConfig::TwoVariantUid),
            AttackResult::Succeeded
        );
        assert_eq!(
            docroot.expected_result(&DeploymentConfig::TwoVariantAddress),
            AttackResult::Detected
        );
        assert_eq!(
            docroot.expected_result(&DeploymentConfig::composed_uid_and_address()),
            AttackResult::Detected
        );
    }

    #[test]
    fn uid_overflow_succeeds_against_the_unprotected_server() {
        let attack = &Attack::all()[0];
        let outcome = run_attack(&DeploymentConfig::Unmodified, attack);
        assert_eq!(outcome.result, AttackResult::Succeeded, "{outcome:?}");
        assert!(outcome.matches_expectation());
        assert!(outcome.alarm.is_none());
    }

    #[test]
    fn uid_overflow_is_detected_by_the_uid_variation() {
        let attack = &Attack::all()[0];
        let outcome = run_attack(&DeploymentConfig::TwoVariantUid, attack);
        assert_eq!(outcome.result, AttackResult::Detected, "{outcome:?}");
        assert!(outcome.matches_expectation());
        assert!(outcome.alarm.is_some());
    }

    #[test]
    fn uid_overflow_evades_address_partitioning() {
        // Class-specificity: the relative overwrite is identical in both
        // address spaces, so Configuration 3 does not stop it.
        let attack = &Attack::all()[0];
        let outcome = run_attack(&DeploymentConfig::TwoVariantAddress, attack);
        assert_eq!(outcome.result, AttackResult::Succeeded, "{outcome:?}");
        assert!(outcome.matches_expectation());
    }

    #[test]
    fn absolute_uid_write_is_detected_by_both_variations() {
        let attack = &Attack::all()[1];
        for config in [
            DeploymentConfig::TwoVariantAddress,
            DeploymentConfig::TwoVariantUid,
        ] {
            let outcome = run_attack(&config, attack);
            assert_eq!(outcome.result, AttackResult::Detected, "{outcome:?}");
            assert!(outcome.matches_expectation());
        }
        let unprotected = run_attack(&DeploymentConfig::Unmodified, attack);
        assert_eq!(
            unprotected.result,
            AttackResult::Succeeded,
            "{unprotected:?}"
        );
    }

    #[test]
    fn attack_matrix_is_worker_count_invariant() {
        let configs = vec![
            DeploymentConfig::Unmodified,
            DeploymentConfig::TwoVariantUid,
        ];
        let serial = attack_matrix_with_workers(&configs, 1);
        let parallel = attack_matrix_with_workers(&configs, 4);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 6);
        // Attack-major ordering, as the paper's matrix reads.
        assert_eq!(serial[0].attack, "uid-overflow");
        assert_eq!(serial[0].config_label, "Unmodified");
        assert_eq!(serial[1].config_label, "2-Variant UID");
        assert_eq!(serial[2].attack, "uid-poke");
        assert!(serial.iter().all(AttackOutcome::matches_expectation));
    }

    #[test]
    fn non_uid_corruption_evades_the_uid_variation_but_not_address_partitioning() {
        let attack = &Attack::all()[2];
        let against_uid = run_attack(&DeploymentConfig::TwoVariantUid, attack);
        assert_eq!(
            against_uid.result,
            AttackResult::Succeeded,
            "{against_uid:?}"
        );
        let against_addr = run_attack(&DeploymentConfig::TwoVariantAddress, attack);
        assert_eq!(
            against_addr.result,
            AttackResult::Detected,
            "{against_addr:?}"
        );
        assert!(against_uid.matches_expectation());
        assert!(against_addr.matches_expectation());
    }
}
