//! Case-study applications for the *Security through Redundant Data
//! Diversity* reproduction.
//!
//! * [`httpd`] — a mini Apache written in SimC: configuration file parsing,
//!   `/etc/passwd` lookup, privilege dropping, a request loop serving static
//!   files, root-escalating log appends, and two deliberately planted
//!   vulnerabilities (an unbounded header copy adjacent to the cached server
//!   UID, and an arbitrary-write maintenance endpoint).
//! * [`workload`] — a WebBench-style closed-loop load generator plus a
//!   discrete-event performance model that reproduces the shape of the
//!   paper's Table 3.
//! * [`attacks`] — concrete attack payloads against the mini server, one per
//!   attack class discussed in the paper, with expected outcomes per
//!   deployment configuration.
//! * [`scenarios`] — canned builders tying the server, the world and the
//!   deployment configurations together, backed by a process-wide
//!   build-once cache of compiled artifacts.
//! * [`campaigns`] — ready-made [`nvariant_campaign`] experiment plans
//!   (benign sweeps, the attack corpus, the full security × world ×
//!   workload matrix) over that cache.
//! * [`checks`] — bounded model-checking entry points: per-configuration
//!   attacker models, ready-made [`nvariant_check`] targets for the paper
//!   matrix, the weakened-monitor regression build, and a campaign whose
//!   cells carry check summaries.
//!
//! # Example
//!
//! ```
//! use nvariant::DeploymentConfig;
//! use nvariant_apps::scenarios::{run_requests, ServedRequest};
//! use nvariant_apps::workload::benign_request;
//!
//! // Serve two benign requests under the paper's Configuration 4.
//! let outcome = run_requests(
//!     &DeploymentConfig::TwoVariantUid,
//!     &[benign_request("/index.html"), benign_request("/about.html")],
//! );
//! assert!(outcome.system.exited_normally());
//! assert_eq!(outcome.requests.len(), 2);
//! assert!(outcome.requests.iter().all(ServedRequest::is_success));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod campaigns;
pub mod checks;
pub mod httpd;
pub mod scenarios;
pub mod workload;

pub use attacks::{
    attack_campaign, attack_scenario, Attack, AttackClass, AttackOutcome, AttackResult,
};
pub use campaigns::{
    benign_scenario, full_matrix_campaign, httpd_campaign, security_sweep_configs,
};
pub use checks::{
    check_paper_matrix, check_summary, check_worlds, checked_httpd_campaign,
    httpd_analysis_reports, httpd_attacker, httpd_check_target, weakened_httpd_check_target,
    weakened_httpd_system, weakened_transform_analysis_reports, weakened_transform_options,
};
pub use httpd::httpd_source;
pub use scenarios::{
    build_httpd_system, compiled_httpd_system, run_requests, ScenarioOutcome, ServedRequest,
};
pub use workload::{benign_request, BenchmarkResult, LoadLevel, WebBench, WorkloadMix};
