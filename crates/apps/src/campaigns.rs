//! Ready-made experiment plans over the mini Apache: benign workloads, the
//! attack corpus, and the full security × workload sweep across every world
//! template, all sharing the process-wide content-addressed
//! [`artifact_store`](crate::scenarios::artifact_store) (and, when it has a
//! disk layer, skipping recompilation across processes too).

use crate::attacks::{attack_scenario, Attack};
use crate::scenarios::compiled_httpd_system;
use crate::workload::WorkloadMix;
use nvariant::DeploymentConfig;
use nvariant_campaign::{CampaignPlan, Scenario};
use nvariant_simos::WorldTemplate;

/// A scenario serving `count` requests drawn from `mix`, re-seeded per cell
/// (replicates of the same triple see different request orders, but the
/// same cell always sees the same order — on any shard, at any worker
/// count).
#[must_use]
pub fn benign_scenario(mix: &WorkloadMix, count: usize) -> Scenario {
    let mix = mix.clone();
    Scenario::new(format!("benign-{count}"), move |_, seed| {
        mix.request_sequence(count, seed)
    })
}

/// A plan skeleton over the given configurations, with the compiled
/// artifacts taken from (or added to) the process-wide artifact store.
/// Cache misses compile in parallel — the compile is the expensive half of
/// deployment, so a cold campaign shouldn't pay it serially before the pool
/// spins up.
#[must_use]
pub fn httpd_campaign(name: &str, configs: &[DeploymentConfig]) -> CampaignPlan {
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let compiled = nvariant_campaign::run_parallel(configs.to_vec(), workers, |_, config| {
        compiled_httpd_system(&config)
    });
    CampaignPlan::new(name).configs(compiled)
}

/// The configurations the security evaluation sweeps: the paper's four plus
/// the composed UID + address variation.
#[must_use]
pub fn security_sweep_configs() -> Vec<DeploymentConfig> {
    let mut configs = DeploymentConfig::paper_configurations();
    configs.push(DeploymentConfig::composed_uid_and_address());
    configs
}

/// The world templates the security evaluation sweeps as its environment
/// axis: every built-in template ([`WorldTemplate::catalogue`]).
#[must_use]
pub fn security_sweep_worlds() -> Vec<WorldTemplate> {
    WorldTemplate::catalogue()
}

/// The one plan every mode of the `campaign_report` binary — and every
/// worker the `campaignd` coordinator spawns — derives from: the full
/// security × world × workload matrix, shrunk by `quick` for smoke runs.
///
/// Shard workers and the merging coordinator all rebuild the plan from the
/// same `quick` flag, which is what makes per-cell seeds *and the plan
/// hash* agree across processes: a worker invoked with the wrong flag
/// produces shards whose [`CampaignPlan::plan_hash`] differs, and the
/// coordinator rejects them up front instead of blending incompatible
/// matrices.
#[must_use]
pub fn report_matrix_plan(
    quick: bool,
) -> (CampaignPlan, Vec<DeploymentConfig>, Vec<WorldTemplate>) {
    let configs = if quick {
        vec![
            DeploymentConfig::Unmodified,
            DeploymentConfig::TwoVariantAddress,
            DeploymentConfig::TwoVariantUid,
        ]
    } else {
        security_sweep_configs()
    };
    let worlds = if quick {
        vec![
            WorldTemplate::standard(),
            WorldTemplate::alternate_docroot(),
            WorldTemplate::faulty_fs(),
        ]
    } else {
        security_sweep_worlds()
    };
    let (benign_requests, replicates) = if quick { (4, 1) } else { (24, 2) };

    // Replicates apply to the whole matrix; attack scenarios ignore the
    // per-cell seed, so their replicated cells reproduce identical outcomes
    // — cheap, and a standing stability check on the engine.
    let plan = full_matrix_campaign(&configs, &worlds, benign_requests, replicates).scenario(
        benign_scenario(&WorkloadMix::standard(), benign_requests * 2),
    );
    (plan, configs, worlds)
}

/// The full evaluation matrix as one plan: every supplied configuration ×
/// every supplied world × (a benign workload scenario + every attack of
/// [`Attack::all`]). An empty `worlds` slice runs every cell in the
/// artifacts' own compile-time template, the pre-world-axis behaviour.
#[must_use]
pub fn full_matrix_campaign(
    configs: &[DeploymentConfig],
    worlds: &[WorldTemplate],
    benign_requests_per_cell: usize,
    replicates: usize,
) -> CampaignPlan {
    let mut plan = httpd_campaign("full-matrix", configs)
        .worlds(worlds.iter().cloned())
        .scenario(benign_scenario(
            &WorkloadMix::standard(),
            benign_requests_per_cell,
        ))
        .replicates(replicates);
    for attack in Attack::all() {
        plan = plan.scenario(attack_scenario(&attack));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_campaign::CellVerdict;

    #[test]
    fn benign_scenario_reseeds_per_cell() {
        let configs = [DeploymentConfig::Unmodified];
        let report = httpd_campaign("reseed", &configs)
            .scenario(benign_scenario(&WorkloadMix::standard(), 6))
            .replicates(2)
            .run(2);
        assert_eq!(report.cells.len(), 2);
        assert!(report.cells.iter().all(|c| c.outcome.exited_normally()));
        assert_ne!(report.cells[0].spec.seed, report.cells[1].spec.seed);
        // Same mix, same count — but the replicate's distinct seed draws a
        // different request order (the standard mix has 6 weighted pages,
        // so 6 draws from different seeds virtually never agree; if they
        // did, the campaign seed derivation would be broken).
        let first: Vec<_> = report.cells[0]
            .exchanges
            .iter()
            .map(|e| &e.request)
            .collect();
        let second: Vec<_> = report.cells[1]
            .exchanges
            .iter()
            .map(|e| &e.request)
            .collect();
        assert_ne!(first, second);
    }

    #[test]
    fn full_matrix_campaign_matches_paper_predictions() {
        let configs = security_sweep_configs();
        let report = full_matrix_campaign(&configs, &[], 4, 1).run(4);
        // 5 configs × 1 implicit world × (1 benign + 3 attacks).
        assert_eq!(report.cells.len(), 20);
        assert_eq!(report.judged_cells(), 15);
        assert!(
            report.verdict_mismatches().is_empty(),
            "{:?}",
            report
                .verdict_mismatches()
                .iter()
                .map(|c| c.canonical_line())
                .collect::<Vec<_>>()
        );
        // The benign scenario serves pages everywhere.
        assert!(report
            .cells_for_scenario("benign-4")
            .iter()
            .all(|c| c.outcome.exited_normally() && c.tally().ok > 0));
        // Configuration 4 detects the UID overflow.
        let uid_cells = report.cells_for_config("2-Variant UID");
        let overflow = uid_cells
            .iter()
            .find(|c| c.spec.scenario_label == "uid-overflow")
            .unwrap();
        assert!(overflow.outcome.detected_attack());
        assert!(overflow.verdict.as_ref().is_some_and(CellVerdict::matches));
    }

    #[test]
    fn full_matrix_campaign_spans_the_world_axis() {
        // One protected and one unprotected configuration across every
        // world template: attack verdicts must match the paper's
        // config-level predictions in *every* world, because the predictions
        // are about the variant structure, not the environment.
        let configs = [
            DeploymentConfig::Unmodified,
            DeploymentConfig::TwoVariantUid,
        ];
        let worlds = security_sweep_worlds();
        let report = full_matrix_campaign(&configs, &worlds, 4, 1).run(4);
        assert_eq!(report.cells.len(), 2 * 4 * 4);
        assert_eq!(report.world_labels().len(), 4);
        assert!(
            report.verdict_mismatches().is_empty(),
            "{:?}",
            report
                .verdict_mismatches()
                .iter()
                .map(|c| c.canonical_line())
                .collect::<Vec<_>>()
        );
        // The faulty-fs world degrades benign service (news.html is on a
        // bad sector) without ever causing a spurious alarm: the fault is
        // shared kernel state, identical across variants.
        let faulty = report.cells_for_world("faulty-fs");
        assert_eq!(faulty.len(), 2 * 4);
        assert!(faulty
            .iter()
            .filter(|c| c.spec.scenario_label == "benign-4")
            .all(|c| c.outcome.exited_normally()));
        // The alternate-accounts world really runs under the alternate UID:
        // detection still works there for the protected configuration.
        let alt_uid_overflow = report
            .cells
            .iter()
            .find(|c| {
                c.spec.world_label == "alt-accounts"
                    && c.spec.config_label == "2-Variant UID"
                    && c.spec.scenario_label == "uid-overflow"
            })
            .unwrap();
        assert!(alt_uid_overflow.outcome.detected_attack());
    }
}
