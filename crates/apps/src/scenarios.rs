//! Canned scenarios: deploy the mini Apache in a configuration, feed it
//! requests, and collect what happened.

use crate::httpd::httpd_source;
use nvariant::{DeploymentConfig, NVariantSystemBuilder, RunnableSystem, SystemOutcome};
use nvariant_transform::TransformStats;
use nvariant_types::{Port, Uid};
use serde::{Deserialize, Serialize};

/// One request/response pair observed at the simulated network.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServedRequest {
    /// The raw request the client sent.
    pub request: Vec<u8>,
    /// The raw response the server produced (possibly empty if the group
    /// was terminated before answering).
    pub response: Vec<u8>,
}

impl ServedRequest {
    /// Returns `true` if the response is a 200.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.response.starts_with(b"HTTP/1.0 200")
    }

    /// Returns `true` if the response is a 403.
    #[must_use]
    pub fn is_forbidden(&self) -> bool {
        self.response.starts_with(b"HTTP/1.0 403")
    }

    /// Returns `true` if the response is a 404.
    #[must_use]
    pub fn is_not_found(&self) -> bool {
        self.response.starts_with(b"HTTP/1.0 404")
    }

    /// The response body (everything after the blank line).
    #[must_use]
    pub fn body(&self) -> &[u8] {
        match self.response.windows(4).position(|w| w == b"\r\n\r\n") {
            Some(pos) => &self.response[pos + 4..],
            None => &[],
        }
    }
}

/// The result of serving a batch of requests under one configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The configuration label the scenario ran under.
    pub config_label: String,
    /// How the deployed system terminated.
    pub system: SystemOutcome,
    /// The request/response pairs, in arrival order.
    pub requests: Vec<ServedRequest>,
    /// The UID-transformation change counts applied at build time.
    pub transform_stats: TransformStats,
}

impl ScenarioOutcome {
    /// Total number of response bytes produced.
    #[must_use]
    pub fn total_response_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.response.len() as u64).sum()
    }

    /// Number of requests answered with a 200.
    #[must_use]
    pub fn successful_requests(&self) -> usize {
        self.requests.iter().filter(|r| r.is_success()).count()
    }
}

/// Builds the mini Apache deployed under `config`, in the standard world.
///
/// # Panics
///
/// Panics if the bundled server source fails to build — that would be a bug
/// in this crate, not in the caller.
#[must_use]
pub fn build_httpd_system(config: &DeploymentConfig) -> RunnableSystem {
    NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled httpd source parses")
        .config(config.clone())
        .initial_uid(Uid::ROOT)
        .build()
        .expect("bundled httpd source builds under every configuration")
}

/// Deploys the mini Apache under `config`, stages `requests` on the HTTP
/// port, runs the system to completion and pairs each request with its
/// response.
#[must_use]
pub fn run_requests(config: &DeploymentConfig, requests: &[Vec<u8>]) -> ScenarioOutcome {
    let mut system = build_httpd_system(config);
    run_requests_on(&mut system, config, requests)
}

/// Like [`run_requests`] but against an already-built system (useful when
/// the caller needed to inspect symbol addresses to craft the requests).
#[must_use]
pub fn run_requests_on(
    system: &mut RunnableSystem,
    config: &DeploymentConfig,
    requests: &[Vec<u8>],
) -> ScenarioOutcome {
    for request in requests {
        system
            .kernel_mut()
            .net_mut()
            .preload_request(Port::HTTP, request.clone());
    }
    let outcome = system.run();
    let served: Vec<ServedRequest> = system
        .kernel()
        .net()
        .connections()
        .map(|conn| ServedRequest {
            request: conn.request.clone(),
            response: conn.response.clone(),
        })
        .collect();
    ScenarioOutcome {
        config_label: config.label(),
        system: outcome,
        requests: served,
        transform_stats: *system.transform_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::benign_request;

    #[test]
    fn benign_requests_are_served_under_all_paper_configurations() {
        let requests = vec![
            benign_request("/index.html"),
            benign_request("/"),
            benign_request("/about.html"),
            benign_request("/missing.html"),
        ];
        for config in DeploymentConfig::paper_configurations() {
            let outcome = run_requests(&config, &requests);
            assert!(
                outcome.system.exited_normally(),
                "{}: {}",
                config,
                outcome.system
            );
            assert_eq!(outcome.requests.len(), 4, "{config}");
            assert_eq!(outcome.successful_requests(), 3, "{config}");
            assert!(outcome.requests[3].is_not_found(), "{config}");
            assert!(outcome.total_response_bytes() > 1000, "{config}");
            // The served index page has the expected content.
            assert!(String::from_utf8_lossy(outcome.requests[0].body()).contains("Welcome"));
        }
    }

    #[test]
    fn traversal_without_corruption_is_denied_by_file_permissions() {
        let requests = vec![benign_request("/../../../../etc/shadow")];
        let outcome = run_requests(&DeploymentConfig::Unmodified, &requests);
        assert!(outcome.system.exited_normally());
        assert!(outcome.requests[0].is_forbidden());
        assert!(!String::from_utf8_lossy(outcome.requests[0].body())
            .contains("EncryptedRootPasswordHash"));
    }

    #[test]
    fn transformed_configurations_expose_change_counts() {
        let outcome = run_requests(
            &DeploymentConfig::TwoVariantUid,
            &[benign_request("/index.html")],
        );
        assert!(outcome.transform_stats.paper_change_total() >= 12);
        let untransformed = run_requests(
            &DeploymentConfig::Unmodified,
            &[benign_request("/index.html")],
        );
        assert_eq!(untransformed.transform_stats.total(), 0);
    }

    #[test]
    fn request_log_is_written_through_privilege_escalation() {
        let outcome = run_requests(
            &DeploymentConfig::TwoVariantUid,
            &[benign_request("/index.html"), benign_request("/about.html")],
        );
        assert!(outcome.system.exited_normally(), "{}", outcome.system);
        let mut system = build_httpd_system(&DeploymentConfig::TwoVariantUid);
        // Fresh system: log starts empty.
        assert!(system
            .kernel_mut()
            .fs()
            .get("/var/log/httpd.log")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn served_request_helpers() {
        let ok = ServedRequest {
            request: b"GET / HTTP/1.0\r\n\r\n".to_vec(),
            response: b"HTTP/1.0 200 OK\r\n\r\nhello".to_vec(),
        };
        assert!(ok.is_success());
        assert_eq!(ok.body(), b"hello");
        let denied = ServedRequest {
            request: vec![],
            response: b"HTTP/1.0 403 Forbidden\r\n\r\nForbidden\n".to_vec(),
        };
        assert!(denied.is_forbidden());
        assert!(!denied.is_success());
        let empty = ServedRequest {
            request: vec![],
            response: vec![],
        };
        assert_eq!(empty.body(), b"");
        assert!(!empty.is_not_found());
    }
}
