//! Canned scenarios: deploy the mini Apache in a configuration, feed it
//! requests, and collect what happened.
//!
//! Since the build-once/run-many split, every entry point here runs on top
//! of the campaign engine: the httpd is compiled **once per configuration**
//! through the process-wide content-addressed [`artifact_store`] (memory
//! layer always; disk layer across processes when a cache directory is
//! configured) and each scenario run only pays
//! [`CompiledSystem::instantiate`].

use crate::httpd::httpd_source;
use nvariant::{
    ArtifactStore, CompiledSystem, DeploymentConfig, NVariantSystemBuilder, RunnableSystem,
};
use nvariant_campaign::{CampaignPlan, CellOutcome, CellResult, Scenario};
use nvariant_transform::TransformStats;
use nvariant_types::Port;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};

pub use nvariant_campaign::ServedRequest;

/// The result of serving a batch of requests under one configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The configuration label the scenario ran under.
    pub config_label: String,
    /// How the deployed system terminated (the flattened, report-side form;
    /// the rendered alarm string is in [`CellOutcome::alarm`]).
    pub system: CellOutcome,
    /// The request/response pairs, in arrival order.
    pub requests: Vec<ServedRequest>,
    /// The UID-transformation change counts applied at build time.
    pub transform_stats: TransformStats,
}

impl ScenarioOutcome {
    /// Total number of response bytes produced.
    #[must_use]
    pub fn total_response_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.response.len() as u64).sum()
    }

    /// Number of requests answered with a 200.
    #[must_use]
    pub fn successful_requests(&self) -> usize {
        self.requests.iter().filter(|r| r.is_success()).count()
    }

    /// Rebuilds a scenario outcome from a campaign cell (the campaign
    /// engine's per-cell result carries the same observations; the cell is
    /// consumed so the exchange buffers move instead of copying).
    #[must_use]
    pub fn from_cell(cell: CellResult) -> Self {
        ScenarioOutcome {
            config_label: cell.spec.config_label,
            system: cell.outcome,
            requests: cell.exchanges,
            transform_stats: cell.transform_stats,
        }
    }
}

static ARTIFACT_STORE: OnceLock<ArtifactStore> = OnceLock::new();

/// Configures the process-wide [`ArtifactStore`] before its first use:
/// `Some(root)` persists compiled artifacts under `<root>/artifacts/` so
/// later *processes* skip recompilation too; `None` forces memory-only
/// caching (overriding any `NVARIANT_CACHE_DIR` in the environment).
///
/// Returns `false` — and changes nothing — if the store was already
/// initialized (by an earlier call or a first [`artifact_store`] use);
/// binaries should call this before compiling anything.
pub fn init_artifact_store(root: Option<PathBuf>) -> bool {
    let store = match root {
        Some(root) => ArtifactStore::at(root),
        None => ArtifactStore::memory_only(),
    };
    ARTIFACT_STORE.set(store).is_ok()
}

/// The process-wide content-addressed artifact store every scenario, attack
/// and benchmark run compiles through. Defaults to the environment
/// configuration ([`ArtifactStore::from_env`]: a disk layer under
/// `NVARIANT_CACHE_DIR` when set, memory-only otherwise) unless
/// [`init_artifact_store`] ran first.
#[must_use]
pub fn artifact_store() -> &'static ArtifactStore {
    ARTIFACT_STORE.get_or_init(ArtifactStore::from_env)
}

/// Compiles the mini Apache for `config` — or returns the cached artifact
/// from the process-wide content-addressed [`artifact_store`] (the memory
/// layer, or the disk layer when one is configured, so a warm cache
/// directory skips recompilation across processes). The artifact is
/// `Send + Sync` and cheap to instantiate, so callers can fan out over it.
///
/// # Panics
///
/// Panics if the bundled server source fails to compile — that would be a
/// bug in this crate, not in the caller.
#[must_use]
pub fn compiled_httpd_system(config: &DeploymentConfig) -> Arc<CompiledSystem> {
    let builder = NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled httpd source parses")
        .config(config.clone())
        .initial_uid(nvariant_types::Uid::ROOT);
    artifact_store()
        .get_or_compile(builder)
        .expect("bundled httpd source compiles under every configuration")
}

/// Builds the mini Apache deployed under `config`, in the standard world
/// (an instantiation of the cached compiled artifact).
///
/// # Panics
///
/// Panics if the bundled server source fails to build — that would be a bug
/// in this crate, not in the caller.
#[must_use]
pub fn build_httpd_system(config: &DeploymentConfig) -> RunnableSystem {
    compiled_httpd_system(config).instantiate()
}

/// Deploys the mini Apache under `config`, stages `requests` on the HTTP
/// port, runs the system to completion and pairs each request with its
/// response. Implemented as a one-cell plan over the cached compiled
/// artifact.
#[must_use]
pub fn run_requests(config: &DeploymentConfig, requests: &[Vec<u8>]) -> ScenarioOutcome {
    let mut report = CampaignPlan::new("run_requests")
        .config(compiled_httpd_system(config))
        .scenario(Scenario::fixed_requests("requests", requests.to_vec()))
        .run(1);
    ScenarioOutcome::from_cell(report.cells.remove(0))
}

/// Like [`run_requests`] but against an already-built system (useful when
/// the caller needed to inspect symbol addresses to craft the requests, or
/// staged extra world state).
#[must_use]
pub fn run_requests_on(
    system: &mut RunnableSystem,
    config: &DeploymentConfig,
    requests: &[Vec<u8>],
) -> ScenarioOutcome {
    let (outcome, served) = nvariant_campaign::serve_requests(system, Port::HTTP, requests);
    ScenarioOutcome {
        config_label: config.label(),
        system: CellOutcome::from(&outcome),
        requests: served,
        transform_stats: *system.transform_stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::benign_request;

    #[test]
    fn benign_requests_are_served_under_all_paper_configurations() {
        let requests = vec![
            benign_request("/index.html"),
            benign_request("/"),
            benign_request("/about.html"),
            benign_request("/missing.html"),
        ];
        for config in DeploymentConfig::paper_configurations() {
            let outcome = run_requests(&config, &requests);
            assert!(
                outcome.system.exited_normally(),
                "{}: {}",
                config,
                outcome.system
            );
            assert_eq!(outcome.requests.len(), 4, "{config}");
            assert_eq!(outcome.successful_requests(), 3, "{config}");
            assert!(outcome.requests[3].is_not_found(), "{config}");
            assert!(outcome.total_response_bytes() > 1000, "{config}");
            // The served index page has the expected content.
            assert!(String::from_utf8_lossy(outcome.requests[0].body()).contains("Welcome"));
        }
    }

    #[test]
    fn traversal_without_corruption_is_denied_by_file_permissions() {
        let requests = vec![benign_request("/../../../../etc/shadow")];
        let outcome = run_requests(&DeploymentConfig::Unmodified, &requests);
        assert!(outcome.system.exited_normally());
        assert!(outcome.requests[0].is_forbidden());
        assert!(!String::from_utf8_lossy(outcome.requests[0].body())
            .contains("EncryptedRootPasswordHash"));
    }

    #[test]
    fn transformed_configurations_expose_change_counts() {
        let outcome = run_requests(
            &DeploymentConfig::TwoVariantUid,
            &[benign_request("/index.html")],
        );
        assert!(outcome.transform_stats.paper_change_total() >= 12);
        let untransformed = run_requests(
            &DeploymentConfig::Unmodified,
            &[benign_request("/index.html")],
        );
        assert_eq!(untransformed.transform_stats.total(), 0);
    }

    #[test]
    fn request_log_is_written_through_privilege_escalation() {
        let outcome = run_requests(
            &DeploymentConfig::TwoVariantUid,
            &[benign_request("/index.html"), benign_request("/about.html")],
        );
        assert!(outcome.system.exited_normally(), "{}", outcome.system);
        let mut system = build_httpd_system(&DeploymentConfig::TwoVariantUid);
        // Fresh system: log starts empty.
        assert!(system
            .kernel_mut()
            .fs()
            .get("/var/log/httpd.log")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn compiled_cache_returns_the_same_artifact() {
        let a = compiled_httpd_system(&DeploymentConfig::TwoVariantUid);
        let b = compiled_httpd_system(&DeploymentConfig::TwoVariantUid);
        assert!(Arc::ptr_eq(&a, &b));
        let other = compiled_httpd_system(&DeploymentConfig::Unmodified);
        assert!(!Arc::ptr_eq(&a, &other));
        // Instantiations of the cached artifact are independent systems.
        let mut one = a.instantiate();
        one.kernel_mut().fs_mut().create("/tmp/mark", vec![1]);
        assert!(!a.instantiate().kernel().fs().exists("/tmp/mark"));
    }

    #[test]
    fn served_request_helpers() {
        let ok = ServedRequest {
            request: b"GET / HTTP/1.0\r\n\r\n".to_vec(),
            response: b"HTTP/1.0 200 OK\r\n\r\nhello".to_vec(),
        };
        assert!(ok.is_success());
        assert_eq!(ok.body(), b"hello");
        let denied = ServedRequest {
            request: vec![],
            response: b"HTTP/1.0 403 Forbidden\r\n\r\nForbidden\n".to_vec(),
        };
        assert!(denied.is_forbidden());
        assert!(!denied.is_success());
        // The status parser tolerates HTTP/1.1 responses too.
        let http11 = ServedRequest {
            request: vec![],
            response: b"HTTP/1.1 404 Not Found\r\n\r\n".to_vec(),
        };
        assert!(http11.is_not_found());
        assert_eq!(http11.status_code(), Some(404));
        let empty = ServedRequest {
            request: vec![],
            response: vec![],
        };
        assert_eq!(empty.body(), b"");
        assert!(!empty.is_not_found());
        assert_eq!(empty.status_code(), None);
    }
}
