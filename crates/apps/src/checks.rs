//! Model-checking entry points for the mini Apache: ready-made
//! [`CheckTarget`]s for the paper's four configurations, the attacker model
//! each configuration is meant to stop, and a campaign variant whose cells
//! carry a bounded-checking summary next to their runtime observations.
//!
//! The campaign engine answers "what *did* the deployed server do on these
//! runs"; these entry points ask the [`BoundedChecker`] what it *could* do
//! under every bounded interleaving of attacker moves and receive
//! schedules. Both views run over the same compiled artifacts from the
//! process-wide [`artifact_store`](crate::scenarios::artifact_store).

use crate::httpd::httpd_source;
use crate::scenarios::artifact_store;
use crate::workload::benign_request;
use nvariant::prelude::MonitorConfig;
use nvariant::{AnalysisReport, CompiledSystem, DeploymentConfig, NVariantSystemBuilder};
use nvariant_campaign::{CampaignPlan, CheckSummary, Scenario};
use nvariant_check::{
    AttackerModel, BoundedChecker, CheckReport, CheckRequest, CheckTarget, Checker, Property,
};
use nvariant_simos::WorldTemplate;
use nvariant_transform::TransformOptions;
use nvariant_types::{Port, Uid};
use std::sync::Arc;

/// The global the paper's UID attacks corrupt: the server's cached
/// unprivileged service UID (see [`httpd_source`]).
pub const ATTACKED_GLOBAL: &str = "server_uid";

/// The attacker model that exercises the detection mechanism `config`
/// deploys, mirroring the attack classes of the paper's evaluation:
///
/// * the UID variation is meant to catch *replicated* corruption (the same
///   concrete value landing in every variant's copy of the global);
/// * address partitioning is meant to catch *absolute* writes (variant 0's
///   concrete address dereferenced in every variant);
/// * single-process configurations have no divergence to detect, so their
///   attacker is passive and attack properties hold vacuously.
#[must_use]
pub fn httpd_attacker(config: &DeploymentConfig) -> AttackerModel {
    match config {
        DeploymentConfig::TwoVariantUid => AttackerModel::CorruptReplicated {
            global: ATTACKED_GLOBAL.to_string(),
            value: 0,
        },
        DeploymentConfig::TwoVariantAddress => AttackerModel::CorruptAbsolute {
            global: ATTACKED_GLOBAL.to_string(),
            value: 0,
        },
        _ => AttackerModel::Passive,
    }
}

/// The worlds the checking matrix sweeps: the standard world plus the
/// alternate-accounts world (different service UIDs, so UID reexpression
/// runs over different concrete values).
#[must_use]
pub fn check_worlds() -> Vec<WorldTemplate> {
    vec![
        WorldTemplate::standard(),
        WorldTemplate::alternate_accounts(),
    ]
}

/// Compiles the mini Apache for `config` with the monitor's detection
/// checks disabled — the "weakened monitor" regression target. The bounded
/// checker must find a minimal counterexample against this artifact where
/// the real monitor passes; it exists so the checker itself is continuously
/// tested against a system that is actually broken.
///
/// Cached through the process-wide artifact store like every other build
/// (the artifact fingerprint covers the monitor configuration, so the
/// weakened build never collides with the real one).
///
/// # Panics
///
/// Panics if the bundled server source fails to compile — a bug in this
/// crate, not in the caller.
#[must_use]
pub fn weakened_httpd_system(config: &DeploymentConfig) -> Arc<CompiledSystem> {
    let builder = NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled httpd source parses")
        .config(config.clone())
        .initial_uid(Uid::ROOT)
        .monitor_config(MonitorConfig::default().without_detection_checks());
    artifact_store()
        .get_or_compile(builder)
        .expect("bundled httpd source compiles under every configuration")
}

/// Transform options with UID reexpression deliberately skipping
/// [`ATTACKED_GLOBAL`] — the seeded weakened-*transform* regression, the
/// static-analysis counterpart of [`weakened_httpd_system`]'s weakened
/// monitor. The static verifier must surface a P-Residual finding against
/// artifacts built with these options; it exists so the verifier itself is
/// continuously tested against a transform that is actually broken.
#[must_use]
pub fn weakened_transform_options() -> TransformOptions {
    TransformOptions {
        skip_reexpression_globals: vec![ATTACKED_GLOBAL.to_string()],
        ..TransformOptions::default()
    }
}

fn httpd_analysis_builder(
    config: &DeploymentConfig,
    options: TransformOptions,
) -> NVariantSystemBuilder {
    NVariantSystemBuilder::from_source(httpd_source())
        .expect("bundled httpd source parses")
        .config(config.clone())
        .initial_uid(Uid::ROOT)
        .transform_options(options)
}

/// Runs the static diversity verifier over the mini Apache's variant pairs
/// under `config`, returning the full per-pair reports (empty for
/// single-process configurations, which have no pair to relate).
///
/// # Panics
///
/// Panics if the bundled server source fails to compile — a bug in this
/// crate, not in the caller.
#[must_use]
pub fn httpd_analysis_reports(config: &DeploymentConfig) -> Vec<AnalysisReport> {
    httpd_analysis_builder(config, TransformOptions::default())
        .analyze_diversity()
        .expect("bundled httpd source compiles under every configuration")
}

/// Like [`httpd_analysis_reports`] but over artifacts built with
/// [`weakened_transform_options`] — the pairs that must *fail* P-Residual.
///
/// # Panics
///
/// Panics if the bundled server source fails to compile — a bug in this
/// crate, not in the caller.
#[must_use]
pub fn weakened_transform_analysis_reports(config: &DeploymentConfig) -> Vec<AnalysisReport> {
    httpd_analysis_builder(config, weakened_transform_options())
        .analyze_diversity()
        .expect("bundled httpd source compiles under every configuration")
}

/// A check target deploying the (cached) mini Apache under `config` into
/// `world`, with one benign request staged and the configuration's natural
/// attacker ([`httpd_attacker`]).
#[must_use]
pub fn httpd_check_target(config: &DeploymentConfig, world: WorldTemplate) -> CheckTarget {
    httpd_target_for(
        crate::scenarios::compiled_httpd_system(config),
        config,
        world,
    )
}

/// Like [`httpd_check_target`] but over the weakened artifact from
/// [`weakened_httpd_system`] — the target that must *fail* UID integrity.
#[must_use]
pub fn weakened_httpd_check_target(config: &DeploymentConfig, world: WorldTemplate) -> CheckTarget {
    httpd_target_for(weakened_httpd_system(config), config, world)
}

fn httpd_target_for(
    system: Arc<CompiledSystem>,
    config: &DeploymentConfig,
    world: WorldTemplate,
) -> CheckTarget {
    CheckTarget {
        system,
        world,
        config_label: config.label(),
        requests: vec![benign_request("/index.html")],
        port: Port::HTTP,
        attacker: httpd_attacker(config),
    }
}

/// Flattens a [`CheckReport`] into the campaign-side [`CheckSummary`] cells
/// carry through the shard codec and canonical report text.
#[must_use]
pub fn check_summary(report: &CheckReport) -> CheckSummary {
    CheckSummary {
        property: report.property.key().to_string(),
        status: report.status.to_string(),
        states: report.stats.states_visited,
        depth: report.depth as u64,
    }
}

/// Checks `property` at `depth` for every paper configuration × every
/// [`check_worlds`] world, in matrix order. This is the sweep the
/// `nvariant_check` binary (and CI) runs.
#[must_use]
pub fn check_paper_matrix(property: Property, depth: usize) -> Vec<CheckReport> {
    let mut reports = Vec::new();
    for config in DeploymentConfig::paper_configurations() {
        for world in check_worlds() {
            let target = httpd_check_target(&config, world);
            reports.push(BoundedChecker.check(&target, &CheckRequest::new(property, depth)));
        }
    }
    reports
}

/// A benign campaign over the paper configurations whose scenario carries a
/// bounded-checking hook: every cell additionally records a UID-integrity
/// check of its own (configuration, world) deployment at `depth`, so the
/// campaign report's canonical text pairs each runtime verdict with a
/// `checked=P1:...` column.
#[must_use]
pub fn checked_httpd_campaign(depth: usize) -> CampaignPlan {
    let scenario = Scenario::fixed_requests("benign-checked", vec![benign_request("/index.html")])
        .with_check(move |system, world, spec| {
            let world = world.cloned().unwrap_or_else(WorldTemplate::standard);
            let target = CheckTarget {
                system: Arc::clone(system),
                world,
                config_label: spec.config_label.clone(),
                requests: vec![benign_request("/index.html")],
                port: Port::HTTP,
                attacker: httpd_attacker(system.config()),
            };
            let report =
                BoundedChecker.check(&target, &CheckRequest::new(Property::UidIntegrity, depth));
            Some(check_summary(&report))
        });
    CampaignPlan::new("httpd-checked")
        .configs(
            DeploymentConfig::paper_configurations()
                .iter()
                .map(crate::scenarios::compiled_httpd_system),
        )
        .worlds(check_worlds())
        .scenario(scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_check::CheckStatus;

    // Exploration depth that reaches the credential calls of one full
    // request service under every paper configuration.
    const DEPTH: usize = 48;

    #[test]
    fn benign_lockstep_holds_across_the_paper_matrix() {
        for report in check_paper_matrix(Property::BenignLockstep, DEPTH) {
            assert_eq!(
                report.status,
                CheckStatus::Pass,
                "{}",
                report.summary_line()
            );
            assert!(report.stats.states_visited > 0, "{}", report.summary_line());
        }
    }

    #[test]
    fn uid_integrity_holds_across_the_paper_matrix() {
        for report in check_paper_matrix(Property::UidIntegrity, DEPTH) {
            assert_eq!(
                report.status,
                CheckStatus::Pass,
                "{}",
                report.summary_line()
            );
        }
    }

    #[test]
    fn weakened_uid_monitor_fails_uid_integrity_with_a_minimal_trace() {
        let target = weakened_httpd_check_target(
            &DeploymentConfig::TwoVariantUid,
            WorldTemplate::standard(),
        );
        let report =
            BoundedChecker.check(&target, &CheckRequest::new(Property::UidIntegrity, DEPTH));
        assert_eq!(
            report.status,
            CheckStatus::Fail,
            "{}",
            report.summary_line()
        );
        let cex = report
            .counterexample
            .expect("failure carries a counterexample");
        assert_eq!(cex.steps.iter().filter(|s| s.action.corrupt).count(), 1);
        assert!(
            cex.render().contains("violation credential call"),
            "{}",
            cex.render()
        );
    }

    #[test]
    fn checked_campaign_attaches_summaries_to_every_cell() {
        let report = checked_httpd_campaign(12).run(2);
        assert_eq!(report.cells.len(), 8);
        for cell in &report.cells {
            let checked = cell.checked.as_ref().expect("every cell checked");
            assert_eq!(checked.property, "P1");
            assert_eq!(checked.status, "pass");
            assert!(checked.states > 0);
        }
        assert!(report.canonical_text().contains("checked=P1:pass:"));
    }
}
