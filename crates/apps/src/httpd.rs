//! The mini Apache: the case-study server, written in SimC.
//!
//! The server follows the structure the paper's §3–§4 describe for Apache:
//!
//! 1. start as root, read `/etc/httpd.conf`;
//! 2. map the configured `User` name to a UID by parsing `/etc/passwd`
//!    (the trusted external data the unshared-files mechanism diversifies);
//! 3. bind the privileged listen port, then drop the *effective* UID to the
//!    service account (keeping root in the saved UID so the log append can
//!    temporarily re-escalate — the wu-ftpd/Apache pattern of Chen et al.);
//! 4. serve static files from the document root, appending to a root-owned
//!    log around each request.
//!
//! Two vulnerabilities are planted deliberately (they are the subjects of
//! the attack library, not bugs):
//!
//! * **Unbounded header copy**: the `User-Agent` value is copied with no
//!   bounds check into a 96-byte global buffer declared immediately before
//!   the cached `server_uid` — a classic non-control-data overflow.
//! * **Arbitrary write**: a `/debug/poke/<addr>/<value>` maintenance
//!   endpoint writes a word to an attacker-chosen absolute address, standing
//!   in for the format-string class of vulnerabilities.

/// The SimC source of the mini Apache server.
///
/// The program is designed to be deployed through
/// [`nvariant::NVariantSystemBuilder`]; combined with the SimC standard
/// library it parses, type-checks and compiles under every configuration.
#[must_use]
pub fn httpd_source() -> &'static str {
    r#"
// ---------------------------------------------------------------------------
// mini-httpd: the Apache-like case-study server.
// ---------------------------------------------------------------------------

var listen_port: int = 80;
var docroot: buf[64];
var logfile: buf[64];
var username: buf[32];

// The unbounded User-Agent copy lands in logbuf; server_uid is declared
// immediately after it, so a long header overwrites the cached UID.
var logbuf: buf[96];
var server_uid: uid_t;
var request_count: int = 0;

// --- configuration ----------------------------------------------------------

// Copies the value following `key` (up to end of line) into out.
fn config_value(text: ptr, key: ptr, out: ptr) -> int {
    var pos: int = 0;
    var j: int;
    while (text[pos] != 0) {
        if (starts_with(text + pos, key)) {
            pos = pos + strlen(key);
            j = 0;
            while (text[pos] != 0 && text[pos] != '\n' && text[pos] != '\r') {
                out[j] = text[pos];
                j = j + 1;
                pos = pos + 1;
            }
            out[j] = 0;
            return j;
        }
        while (text[pos] != 0 && text[pos] != '\n') { pos = pos + 1; }
        if (text[pos] == '\n') { pos = pos + 1; }
    }
    return 0 - 1;
}

fn load_config() -> int {
    var fd: int;
    var text: buf[512];
    var portbuf: buf[16];
    var n: int;
    fd = open("/etc/httpd.conf", 0);
    if (fd < 0) { return 0 - 1; }
    n = read(fd, &text, 500);
    close(fd);
    text[n] = 0;
    if (config_value(&text, "Listen ", &portbuf) > 0) {
        listen_port = atoi(&portbuf);
    }
    if (config_value(&text, "User ", username) < 0) { return 0 - 1; }
    if (config_value(&text, "DocumentRoot ", docroot) < 0) { return 0 - 1; }
    if (config_value(&text, "LogFile ", logfile) < 0) { return 0 - 1; }
    return 0;
}

// --- account database -------------------------------------------------------

// Maps a login name to its UID by parsing /etc/passwd (the libc getpwnam
// path). Returns 0 if the name is not found, which main treats as fatal.
fn lookup_uid(name: ptr) -> uid_t {
    var fd: int;
    var text: buf[1024];
    var n: int;
    var pos: int;
    var field: int;
    var value: int;
    fd = open("/etc/passwd", 0);
    if (fd < 0) { return 0; }
    n = read(fd, &text, 1000);
    close(fd);
    text[n] = 0;
    pos = 0;
    while (text[pos] != 0) {
        if (starts_with(text + pos, name)) {
            field = 0;
            while (field < 2) {
                while (text[pos] != ':') { pos = pos + 1; }
                pos = pos + 1;
                field = field + 1;
            }
            value = 0;
            while (text[pos] >= '0' && text[pos] <= '9') {
                value = value * 10 + (text[pos] - '0');
                pos = pos + 1;
            }
            return value;
        }
        while (text[pos] != 0 && text[pos] != '\n') { pos = pos + 1; }
        if (text[pos] == '\n') { pos = pos + 1; }
    }
    return 0;
}

// --- logging (temporary privilege escalation) --------------------------------

// Appends one access-log line. The log file is root-owned, so the server
// escalates its effective UID for the append and then drops back to the
// cached service UID — the value an attacker wants to corrupt.
fn log_request(path: ptr) {
    var fd: int;
    seteuid(0);
    fd = open(logfile, 1089);
    if (fd >= 0) {
        write(fd, "GET ", 4);
        write(fd, path, strlen(path));
        write(fd, "\n", 1);
        close(fd);
    }
    seteuid(server_uid);
    request_count = request_count + 1;
}

// Records a permission failure, including the responsible UID (the error-log
// statement §4 of the paper had to sanitize).
fn log_denied(who: uid_t) {
    var fd: int;
    var line: buf[32];
    seteuid(0);
    fd = open(logfile, 1089);
    if (fd >= 0) {
        write(fd, "denied uid ", 11);
        utoa(who, &line);
        write(fd, &line, strlen(&line));
        write(fd, "\n", 1);
        close(fd);
    }
    seteuid(server_uid);
}

// --- request handling ---------------------------------------------------------

// Locates a header value; returns the offset just past the header name, or -1.
fn header_offset(req: ptr, name: ptr) -> int {
    var i: int = 0;
    while (req[i] != 0) {
        if (starts_with(req + i, name)) { return i + strlen(name); }
        i = i + 1;
    }
    return 0 - 1;
}

// Copies a header value up to the end of its line.
// VULNERABILITY: the destination size is never checked.
fn copy_header_value(dst: ptr, src: ptr) -> int {
    var i: int = 0;
    while (src[i] != 0 && src[i] != '\r' && src[i] != '\n') {
        dst[i] = src[i];
        i = i + 1;
    }
    dst[i] = 0;
    return i;
}

// The /debug/poke/<addr>/<value> maintenance endpoint.
// VULNERABILITY: writes one word to an arbitrary absolute address.
fn parse_poke(path: ptr) -> int {
    var p: ptr;
    var addr: int;
    var value: int;
    var i: int = 12;
    addr = 0;
    while (path[i] >= '0' && path[i] <= '9') {
        addr = addr * 10 + (path[i] - '0');
        i = i + 1;
    }
    if (path[i] == '/') { i = i + 1; }
    value = 0;
    while (path[i] >= '0' && path[i] <= '9') {
        value = value * 10 + (path[i] - '0');
        i = i + 1;
    }
    p = addr;
    *p = value;
    return 0;
}

// Minimal per-request policy check, modelled on the suexec-style UID checks
// real servers perform: administrative pages are served only when the worker
// is running as a system service account (never as root, never as an
// ordinary or anonymous user).
fn authorize_admin(who: uid_t) -> int {
    if (who == 0) { return 0; }
    if (who >= 65534) { return 0; }
    if (who < 100) { return 1; }
    return 0;
}

fn serve_file(conn: int, path: ptr) -> int {
    var full: buf[320];
    var content: buf[4096];
    var fd: int;
    var n: int;
    strcpy(&full, docroot);
    if (strcmp(path, "/") == 0) {
        strcat(&full, "/index.html");
    } else {
        strcat(&full, path);
    }
    fd = open(&full, 0);
    if (fd < 0) {
        if (fd == 0 - 13) {
            send_str(conn, "HTTP/1.0 403 Forbidden\r\n\r\nForbidden\n");
            log_denied(server_uid);
            return 403;
        }
        send_str(conn, "HTTP/1.0 404 Not Found\r\n\r\nNot Found\n");
        return 404;
    }
    send_str(conn, "HTTP/1.0 200 OK\r\n\r\n");
    n = read(fd, &content, 4096);
    while (n > 0) {
        send(conn, &content, n);
        n = read(fd, &content, 4096);
    }
    close(fd);
    return 200;
}

fn handle_request(conn: int) -> int {
    var request: buf[1024];
    var path: buf[256];
    var n: int;
    var i: int;
    var agent_at: int;
    var status: int;
    n = recv(conn, &request, 1000);
    if (n <= 0) { return 0 - 1; }
    request[n] = 0;
    if (starts_with(&request, "GET ") == 0) {
        send_str(conn, "HTTP/1.0 501 Not Implemented\r\n\r\n");
        return 501;
    }
    // Extract the request path.
    i = 0;
    while (request[4 + i] != ' ' && request[4 + i] != 0 && i < 255) {
        path[i] = request[4 + i];
        i = i + 1;
    }
    path[i] = 0;
    // Remember the client's User-Agent for the access log.
    agent_at = header_offset(&request, "User-Agent: ");
    if (agent_at >= 0) {
        copy_header_value(logbuf, &request + agent_at);
    }
    // Maintenance endpoint.
    if (starts_with(&path, "/debug/poke/")) {
        parse_poke(&path);
        log_request(&path);
        send_str(conn, "HTTP/1.0 200 OK\r\n\r\npoked\n");
        return 200;
    }
    // Administrative pages require the suexec-style UID policy check.
    if (starts_with(&path, "/admin/")) {
        if (authorize_admin(geteuid()) == 0) {
            send_str(conn, "HTTP/1.0 403 Forbidden\r\n\r\nForbidden\n");
            log_denied(geteuid());
            return 403;
        }
    }
    log_request(&path);
    status = serve_file(conn, &path);
    return status;
}

fn main() -> int {
    var sock: int;
    var conn: int;
    var rc: int;
    if (load_config() != 0) { return 1; }
    server_uid = lookup_uid(username);
    // The account must exist and must not be root (the implicit comparison
    // with the constant 0 is the paper's §3.3 `if (!getuid())` example).
    if (!server_uid) { return 2; }
    sock = socket();
    if (sock < 0) { return 3; }
    rc = bind(sock, listen_port);
    if (rc != 0) { return 4; }
    rc = listen(sock);
    if (rc != 0) { return 5; }
    rc = seteuid(server_uid);
    if (rc != 0) { return 6; }
    conn = accept(sock);
    while (conn >= 0) {
        handle_request(conn);
        close(conn);
        conn = accept(sock);
    }
    return 0;
}
"#
}

/// Size of the vulnerable `logbuf` buffer; the number of bytes an attacker
/// must write before reaching `server_uid`.
pub const LOGBUF_SIZE: usize = 96;

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::{compile_program, parse_with_stdlib, typecheck_program};

    #[test]
    fn httpd_parses_typechecks_and_compiles() {
        let program = parse_with_stdlib(httpd_source()).unwrap();
        assert!(program.function("main").is_some());
        assert!(program.function("handle_request").is_some());
        assert!(program.function("lookup_uid").is_some());
        typecheck_program(&program).unwrap();
        let compiled = compile_program(&program).unwrap();
        assert!(compiled.instruction_count() > 400);
        // The overflow adjacency the attack depends on.
        let (logbuf_off, _) = compiled.globals_map["logbuf"];
        let (uid_off, _) = compiled.globals_map["server_uid"];
        assert_eq!(uid_off, logbuf_off + LOGBUF_SIZE as u32);
    }

    #[test]
    fn uid_typed_data_is_declared_with_uid_t() {
        let program = parse_with_stdlib(httpd_source()).unwrap();
        let global = program.global("server_uid").unwrap();
        assert_eq!(global.ty, nvariant_vm::Type::UidT);
        let lookup = program.function("lookup_uid").unwrap();
        assert_eq!(lookup.ret, nvariant_vm::Type::UidT);
    }

    #[test]
    fn httpd_transforms_cleanly_for_the_uid_variation() {
        use nvariant_diversity::UidTransform;
        use nvariant_transform::UidTransformer;
        let program = parse_with_stdlib(httpd_source()).unwrap();
        let transformer = UidTransformer::default();
        let variant1 = transformer
            .transform_for_variant(&program, &UidTransform::paper_mask())
            .unwrap();
        assert!(
            variant1.stats.comparison_exposures >= 4,
            "{:?}",
            variant1.stats
        );
        assert!(
            variant1.stats.conditional_checks >= 3,
            "{:?}",
            variant1.stats
        );
        assert!(
            variant1.stats.single_value_exposures >= 2,
            "{:?}",
            variant1.stats
        );
        assert!(
            variant1.stats.log_sinks_sanitized >= 1,
            "{:?}",
            variant1.stats
        );
        assert!(
            variant1.stats.uid_constants_reexpressed >= 5,
            "{:?}",
            variant1.stats
        );
        assert!(
            variant1.stats.paper_change_total() >= 12,
            "{:?}",
            variant1.stats
        );
        // The transformed variant still compiles.
        compile_program(&variant1.program).unwrap();
    }
}
