//! The WebBench-style workload generator and performance model.
//!
//! The paper measures throughput (KB/s) and latency (ms) for the four
//! configurations of Table 3 under an *unsaturated* load (one WebBench
//! client) and a *saturated* load (15 client engines). Here:
//!
//! * the **workload** is the same kind of static-page mix, generated
//!   deterministically from the standard world's document root;
//! * the **per-request cost** of each configuration is *measured* by running
//!   the requests through the deployed system and reading the execution
//!   counters (instructions per variant, monitor checks, kernel I/O bytes);
//! * a **closed-loop discrete-event model** converts those costs into
//!   throughput and latency for a given number of clients, charging CPU work
//!   per variant but I/O only once — which is exactly the asymmetry that
//!   produces the paper's unsaturated-vs-saturated shape.

use crate::campaigns::httpd_campaign;
use crate::scenarios::{run_requests, ScenarioOutcome};
use nvariant::DeploymentConfig;
use nvariant_campaign::Scenario;
use nvariant_simos::{CostModel, SimDuration, SimInstant, Sysno};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Builds a benign HTTP request for `path`, with the modest User-Agent the
/// WebBench tool would send.
#[must_use]
pub fn benign_request(path: &str) -> Vec<u8> {
    format!(
        "GET {path} HTTP/1.0\r\nHost: www.example.test\r\nUser-Agent: WebBench 5.0\r\nAccept: */*\r\n\r\n"
    )
    .into_bytes()
}

/// A weighted static-page mix.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMix {
    entries: Vec<(String, u32)>,
}

impl Default for WorkloadMix {
    fn default() -> Self {
        WorkloadMix::standard()
    }
}

impl WorkloadMix {
    /// The standard static mix over the pages of the standard world.
    #[must_use]
    pub fn standard() -> Self {
        WorkloadMix {
            entries: vec![
                ("/index.html".to_string(), 4),
                ("/about.html".to_string(), 2),
                ("/products.html".to_string(), 2),
                ("/contact.html".to_string(), 1),
                ("/news.html".to_string(), 1),
                ("/logo.png".to_string(), 2),
            ],
        }
    }

    /// A custom mix from `(path, weight)` pairs.
    #[must_use]
    pub fn new(entries: Vec<(String, u32)>) -> Self {
        WorkloadMix { entries }
    }

    /// The distinct paths in the mix.
    #[must_use]
    pub fn paths(&self) -> Vec<&str> {
        self.entries.iter().map(|(p, _)| p.as_str()).collect()
    }

    /// Generates a deterministic sequence of `count` requests drawn from the
    /// weighted mix.
    #[must_use]
    pub fn request_sequence(&self, count: usize, seed: u64) -> Vec<Vec<u8>> {
        let total_weight: u32 = self.entries.iter().map(|(_, w)| *w).sum::<u32>().max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut pick = rng.gen_range(0..total_weight);
                for (path, weight) in &self.entries {
                    if pick < *weight {
                        return benign_request(path);
                    }
                    pick -= weight;
                }
                benign_request("/index.html")
            })
            .collect()
    }
}

/// A load level: how many closed-loop clients issue how many requests each.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadLevel {
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
}

impl LoadLevel {
    /// The paper's unsaturated load: a single WebBench client engine.
    #[must_use]
    pub fn unsaturated() -> Self {
        LoadLevel {
            clients: 1,
            requests_per_client: 36,
        }
    }

    /// The paper's saturated load: three client machines running five
    /// engines each.
    #[must_use]
    pub fn saturated() -> Self {
        LoadLevel {
            clients: 15,
            requests_per_client: 6,
        }
    }

    /// Total requests issued at this load level.
    #[must_use]
    pub fn total_requests(&self) -> usize {
        self.clients * self.requests_per_client
    }

    /// A doubling client-count ladder (1, 2, 4, ... up to `max_clients`),
    /// for tracing how throughput and latency trend *between* the paper's
    /// two published load points instead of just at them.
    #[must_use]
    pub fn ladder(max_clients: usize) -> Vec<LoadLevel> {
        let mut levels = Vec::new();
        let mut clients = 1;
        while clients <= max_clients {
            levels.push(LoadLevel {
                clients,
                requests_per_client: 4,
            });
            clients *= 2;
        }
        levels
    }
}

/// One measured cell of the Table 3 reproduction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkResult {
    /// Configuration label.
    pub config_label: String,
    /// Number of closed-loop clients.
    pub clients: usize,
    /// Requests served.
    pub requests: usize,
    /// Throughput in KB/s of response payload.
    pub throughput_kb_s: f64,
    /// Mean request latency in milliseconds.
    pub latency_ms: f64,
    /// Average CPU service time per request (all variants plus monitor
    /// checks), in milliseconds.
    pub cpu_service_ms: f64,
    /// Total instructions executed across all variants.
    pub total_instructions: u64,
    /// Monitor equivalence checks performed.
    pub monitor_checks: u64,
    /// Whether every request was answered successfully.
    pub all_requests_succeeded: bool,
}

/// The WebBench-style benchmark driver.
#[derive(Clone, Debug)]
pub struct WebBench {
    /// The page mix.
    pub mix: WorkloadMix,
    /// The simulated-time cost model.
    pub costs: CostModel,
    /// Seed for the deterministic request sequence.
    pub seed: u64,
}

impl Default for WebBench {
    fn default() -> Self {
        WebBench {
            mix: WorkloadMix::standard(),
            costs: CostModel::default(),
            seed: 0x5EED,
        }
    }
}

impl WebBench {
    /// Measures one configuration under one load level.
    #[must_use]
    pub fn measure(&self, config: &DeploymentConfig, load: &LoadLevel) -> BenchmarkResult {
        let requests = self.mix.request_sequence(load.total_requests(), self.seed);
        let scenario = run_requests(config, &requests);
        self.result_from_scenario(config, load, &scenario)
    }

    /// Measures every configuration × load-level cell as one campaign over
    /// the cached compiled artifacts, fanning the cells out across
    /// `workers` threads. Results come back config-major (`configs[0]`
    /// under every load, then `configs[1]`, ...), and each cell equals the
    /// corresponding [`measure`](Self::measure) call at any worker count:
    /// the request sequence is fixed by the bench's own seed.
    #[must_use]
    pub fn measure_matrix(
        &self,
        configs: &[DeploymentConfig],
        loads: &[LoadLevel],
        workers: usize,
    ) -> Vec<BenchmarkResult> {
        let mut campaign = httpd_campaign("webbench", configs);
        for load in loads {
            campaign = campaign.scenario(Scenario::fixed_requests(
                format!("load-{}x{}", load.clients, load.requests_per_client),
                self.mix.request_sequence(load.total_requests(), self.seed),
            ));
        }
        let report = campaign.run(workers);
        report
            .cells
            .into_iter()
            .map(|cell| {
                let config = &configs[cell.spec.config_index];
                let load = &loads[cell.spec.scenario_index];
                let scenario = ScenarioOutcome::from_cell(cell);
                self.result_from_scenario(config, load, &scenario)
            })
            .collect()
    }

    /// Converts a served scenario into throughput/latency figures using the
    /// closed-loop model.
    #[must_use]
    pub fn result_from_scenario(
        &self,
        config: &DeploymentConfig,
        load: &LoadLevel,
        scenario: &ScenarioOutcome,
    ) -> BenchmarkResult {
        let n_requests = scenario.requests.len().max(1);
        let metrics = &scenario.system.metrics;

        // Measured CPU cost per request: all variants' instructions plus the
        // per-syscall kernel crossings and the monitor's equivalence checks.
        let cpu_total = self.costs.cpu_cost(
            metrics.total_instructions,
            metrics.syscalls * metrics.variants.max(1) as u64,
        ) + self.costs.monitor_cost(metrics.monitor_checks);
        let cpu_per_request = SimDuration::from_nanos(cpu_total.as_nanos() / n_requests as u64);

        // Kernel-side I/O per request (performed once regardless of variant
        // count): approximate the disk portion from the bytes the kernel
        // moved minus what went over the network.
        let response_bytes: u64 = scenario.total_response_bytes();
        let request_bytes: u64 = scenario
            .requests
            .iter()
            .map(|r| r.request.len() as u64)
            .sum();
        let disk_bytes = metrics
            .io_bytes
            .saturating_sub(response_bytes + request_bytes);
        let disk_per_request = self
            .costs
            .io_cost(Sysno::Read, (disk_bytes / n_requests as u64) as usize);
        let service = cpu_per_request + disk_per_request;

        let avg_request = request_bytes / n_requests as u64;
        let avg_response = response_bytes / n_requests as u64;
        let request_net = self.costs.network_transfer(avg_request as usize);
        let response_net = self.costs.network_transfer(avg_response as usize);

        let (duration, mean_latency) = simulate_closed_loop(
            load.clients.max(1),
            load.requests_per_client.max(1),
            service,
            request_net,
            response_net,
        );
        let total_bytes_kb = response_bytes as f64 / 1024.0;
        let throughput_kb_s = if duration.as_secs_f64() > 0.0 {
            total_bytes_kb / duration.as_secs_f64()
        } else {
            0.0
        };

        BenchmarkResult {
            config_label: config.label(),
            clients: load.clients,
            requests: n_requests,
            throughput_kb_s,
            latency_ms: mean_latency.as_millis_f64(),
            cpu_service_ms: cpu_per_request.as_millis_f64(),
            total_instructions: metrics.total_instructions,
            monitor_checks: metrics.monitor_checks,
            all_requests_succeeded: scenario.successful_requests() == scenario.requests.len(),
        }
    }
}

/// Simulates `clients` closed-loop clients (zero think time) against a
/// single-threaded server with deterministic `service` time per request.
/// Returns the total simulated duration and the mean request latency.
fn simulate_closed_loop(
    clients: usize,
    requests_per_client: usize,
    service: SimDuration,
    request_net: SimDuration,
    response_net: SimDuration,
) -> (SimDuration, SimDuration) {
    let mut next_send = vec![SimInstant::ZERO; clients];
    let mut remaining = vec![requests_per_client; clients];
    let mut server_free = SimInstant::ZERO;
    let mut latency_total = SimDuration::ZERO;
    let mut completed = 0u64;
    let mut last_completion = SimInstant::ZERO;

    loop {
        // Pick the client with the earliest pending send.
        let mut chosen = None;
        for (client, left) in remaining.iter().enumerate() {
            if *left == 0 {
                continue;
            }
            match chosen {
                None => chosen = Some(client),
                Some(best) if next_send[client] < next_send[best] => chosen = Some(client),
                Some(_) => {}
            }
        }
        let Some(client) = chosen else { break };

        let send = next_send[client];
        let arrival = send + request_net;
        let start = arrival.max(server_free);
        let done = start + service;
        server_free = done;
        let response_arrival = done + response_net;

        latency_total += response_arrival.duration_since(send);
        completed += 1;
        last_completion = last_completion.max(response_arrival);
        remaining[client] -= 1;
        next_send[client] = response_arrival;
    }

    let mean_latency = latency_total
        .as_nanos()
        .checked_div(completed)
        .map_or(SimDuration::ZERO, SimDuration::from_nanos);
    (
        last_completion.duration_since(SimInstant::ZERO),
        mean_latency,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_request_is_well_formed() {
        let req = benign_request("/index.html");
        let text = String::from_utf8(req).unwrap();
        assert!(text.starts_with("GET /index.html HTTP/1.0\r\n"));
        assert!(text.contains("User-Agent: WebBench 5.0"));
        assert!(text.ends_with("\r\n\r\n"));
    }

    #[test]
    fn request_sequence_is_deterministic_and_weighted() {
        let mix = WorkloadMix::standard();
        let a = mix.request_sequence(50, 7);
        let b = mix.request_sequence(50, 7);
        assert_eq!(a, b);
        let c = mix.request_sequence(50, 8);
        assert_ne!(a, c);
        // The heaviest page appears most often.
        let count_index = a
            .iter()
            .filter(|r| r.starts_with(b"GET /index.html "))
            .count();
        let count_contact = a
            .iter()
            .filter(|r| r.starts_with(b"GET /contact.html "))
            .count();
        assert!(count_index > count_contact);
        assert_eq!(mix.paths().len(), 6);
    }

    #[test]
    fn load_levels_match_the_paper_setup() {
        assert_eq!(LoadLevel::unsaturated().clients, 1);
        assert_eq!(LoadLevel::saturated().clients, 15);
        assert!(LoadLevel::saturated().total_requests() >= 60);
    }

    #[test]
    fn ladder_doubles_client_counts() {
        let ladder = LoadLevel::ladder(64);
        assert_eq!(
            ladder.iter().map(|l| l.clients).collect::<Vec<_>>(),
            vec![1, 2, 4, 8, 16, 32, 64]
        );
        assert!(ladder.iter().all(|l| l.total_requests() > 0));
        // A cap below the next power of two stops the ladder early.
        assert_eq!(LoadLevel::ladder(10).len(), 4);
    }

    #[test]
    fn closed_loop_model_saturates_with_many_clients() {
        let service = SimDuration::from_micros(500);
        let net = SimDuration::from_micros(200);
        let (dur_1, lat_1) = simulate_closed_loop(1, 50, service, net, net);
        let (dur_15, lat_15) = simulate_closed_loop(15, 50, service, net, net);
        // One client: latency is service + 2*net, no queueing.
        assert_eq!(lat_1, service + net + net);
        // Fifteen clients: the server is the bottleneck, so latency grows
        // while total duration per request shrinks (higher throughput).
        assert!(lat_15 > lat_1.times(5));
        let rate_1 = 50.0 / dur_1.as_secs_f64();
        let rate_15 = (15.0 * 50.0) / dur_15.as_secs_f64();
        assert!(rate_15 > rate_1 * 1.5);
        // But the saturated rate is bounded by the service time.
        let service_bound = 1.0 / service.as_secs_f64();
        assert!(rate_15 <= service_bound * 1.01);
    }

    #[test]
    fn measured_throughput_drops_when_service_time_doubles() {
        // Direct sanity check of the model feeding Table 3: doubling the
        // per-request CPU cost roughly halves saturated throughput.
        let slow = simulate_closed_loop(
            15,
            20,
            SimDuration::from_micros(1000),
            SimDuration::from_micros(100),
            SimDuration::from_micros(100),
        );
        let fast = simulate_closed_loop(
            15,
            20,
            SimDuration::from_micros(500),
            SimDuration::from_micros(100),
            SimDuration::from_micros(100),
        );
        let ratio = slow.0.as_secs_f64() / fast.0.as_secs_f64();
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn webbench_measures_a_configuration_end_to_end() {
        let bench = WebBench::default();
        let load = LoadLevel {
            clients: 2,
            requests_per_client: 3,
        };
        let result = bench.measure(&DeploymentConfig::Unmodified, &load);
        assert_eq!(result.requests, 6);
        assert!(result.all_requests_succeeded);
        assert!(result.throughput_kb_s > 0.0);
        assert!(result.latency_ms > 0.0);
        assert!(result.total_instructions > 10_000);
        assert_eq!(result.monitor_checks, 0);
    }

    #[test]
    fn measure_matrix_parallel_cells_match_serial_measurements() {
        let bench = WebBench::default();
        let configs = [
            DeploymentConfig::Unmodified,
            DeploymentConfig::TwoVariantUid,
        ];
        let loads = [
            LoadLevel {
                clients: 1,
                requests_per_client: 4,
            },
            LoadLevel {
                clients: 2,
                requests_per_client: 2,
            },
        ];
        let matrix = bench.measure_matrix(&configs, &loads, 4);
        assert_eq!(matrix.len(), 4);
        // Config-major ordering, each cell identical to the one-shot path.
        let mut index = 0;
        for config in &configs {
            for load in &loads {
                assert_eq!(matrix[index], bench.measure(config, load), "cell {index}");
                index += 1;
            }
        }
    }
}
