//! The source-to-source UID data diversity transformation (§3.3–§3.5, §4 of
//! the paper), automated.
//!
//! The paper transformed Apache by hand (73 changes) but argues the process
//! "could be readily automated"; this crate is that automation for SimC
//! programs. It has two halves, mirroring the paper:
//!
//! 1. **Instrumentation**, applied identically to every variant:
//!    * make implicit UID constants explicit (`if (!getuid())` becomes
//!      `if (getuid() == 0)`),
//!    * expose UID comparisons to the monitor through the `cc_*` detection
//!      calls (Table 2) — which also sidesteps the operator-reversal problem
//!      for inequality comparisons on reexpressed data,
//!    * expose single UID values passed across function boundaries through
//!      `uid_value`,
//!    * check UID-influenced conditionals through `cond_chk`,
//!    * sanitize UID values out of log/format sinks (the divergence pitfall
//!      §4 describes for Apache's error log).
//! 2. **Reexpression**, applied per variant: every UID-typed constant in the
//!    program text is replaced by `Rᵢ(constant)`.
//!
//! The per-category change counts are reported as [`TransformStats`], the
//! analogue of the paper's "73 changes" breakdown.
//!
//! # Example
//!
//! ```
//! use nvariant_diversity::UidTransform;
//! use nvariant_transform::UidTransformer;
//! use nvariant_vm::parse_program;
//!
//! let program = parse_program(r#"
//!     var server_uid: uid_t;
//!     fn main() -> int {
//!         server_uid = getuid();
//!         if (!server_uid) { return 1; }
//!         if (server_uid >= 1000) { return 2; }
//!         return setuid(0);
//!     }
//! "#)?;
//!
//! let transformer = UidTransformer::default();
//! let variant1 = transformer.transform_for_variant(&program, &UidTransform::paper_mask())?;
//! assert!(variant1.stats.total() > 0);
//! // The constant 0 passed to setuid is now the variant's representation of root.
//! let text = nvariant_vm::pretty_print(&variant1.program);
//! assert!(text.contains("setuid(0x7fffffff)"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod inference;
pub mod passes;
pub mod stats;

pub use driver::{TransformError, TransformOptions, TransformedVariant, UidTransformer};
pub use inference::UidContext;
pub use stats::TransformStats;
