//! Identification of UID-carrying and UID-influenced data.
//!
//! The paper (§4) describes two ways to find the data the variation must
//! transform: the declared `uid_t`/`gid_t` types when the programmer used
//! them strictly, and a Splint-style dataflow analysis (variables that store
//! the result of `getuid`-like functions or flow into `setuid`-like
//! parameters) when they did not. Both are implemented here, along with a
//! *taint* analysis that finds data merely *influenced* by UID values — the
//! data whose conditionals the `cond_chk` pass must expose.

use nvariant_vm::ast::{Expr, Function, LValue, Program, Stmt, Type};
use nvariant_vm::typecheck::{builtin_signature, typecheck_program, TypeInfo};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Everything the transformation passes need to know about which data is
/// UID-class and which data is UID-influenced.
///
/// # Example
///
/// ```
/// use nvariant_transform::UidContext;
/// use nvariant_vm::parse_program;
///
/// let program = parse_program(r#"
///     var cached: int;            // declared int, but holds a UID
///     fn main() -> int {
///         var rc: int;
///         cached = getuid();      // dataflow inference marks `cached`
///         rc = setuid(cached);    // rc is UID-influenced (tainted)
///         if (rc != 0) { return 1; }
///         return 0;
///     }
/// "#)?;
/// let ctx = UidContext::analyze(&program)?;
/// assert!(ctx.is_uid_var("main", "cached"));
/// assert!(!ctx.is_uid_var("main", "rc"));
/// assert!(ctx.is_tainted("main", "rc"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UidContext {
    type_info: TypeInfo,
    /// Globals known to hold UID-class values (declared or inferred).
    uid_globals: BTreeSet<String>,
    /// Per-function locals/params known to hold UID-class values.
    uid_locals: BTreeMap<String, BTreeSet<String>>,
    /// User functions whose return value is UID-class.
    uid_functions: BTreeSet<String>,
    /// Globals whose values are influenced by UID data.
    tainted_globals: BTreeSet<String>,
    /// Per-function locals whose values are influenced by UID data.
    tainted_locals: BTreeMap<String, BTreeSet<String>>,
    /// User functions whose result is influenced by UID data (they return a
    /// tainted expression or perform UID-taking operations in their body).
    tainted_functions: BTreeSet<String>,
}

impl UidContext {
    /// Runs type checking, UID inference and taint analysis over a program.
    ///
    /// # Errors
    ///
    /// Returns the underlying type error if the program does not check.
    pub fn analyze(program: &Program) -> Result<Self, nvariant_vm::TypeError> {
        let type_info = typecheck_program(program)?;
        let mut ctx = UidContext {
            type_info,
            ..UidContext::default()
        };
        ctx.seed_declared_types(program);
        ctx.infer_fixpoint(program);
        ctx.taint_fixpoint(program);
        Ok(ctx)
    }

    /// The type information computed for the program.
    #[must_use]
    pub fn type_info(&self) -> &TypeInfo {
        &self.type_info
    }

    fn seed_declared_types(&mut self, program: &Program) {
        for global in &program.globals {
            if global.ty.is_uid_class() {
                self.uid_globals.insert(global.name.clone());
            }
        }
        for function in &program.functions {
            let mut locals = BTreeSet::new();
            if let Some(table) = self.type_info.locals.get(&function.name) {
                for (name, ty) in table {
                    if ty.is_uid_class() {
                        locals.insert(name.clone());
                    }
                }
            }
            self.uid_locals.insert(function.name.clone(), locals);
            if function.ret.is_uid_class() {
                self.uid_functions.insert(function.name.clone());
            }
        }
    }

    /// Returns `true` if `name`, referenced from `function`, holds UID-class
    /// data (by declaration or by inference).
    #[must_use]
    pub fn is_uid_var(&self, function: &str, name: &str) -> bool {
        if let Some(locals) = self.uid_locals.get(function) {
            if locals.contains(name) {
                return true;
            }
        }
        // A local declaration shadows a global of the same name.
        if self
            .type_info
            .locals
            .get(function)
            .is_some_and(|l| l.contains_key(name))
        {
            return false;
        }
        self.uid_globals.contains(name)
    }

    /// Returns `true` if the named user function returns UID-class data.
    #[must_use]
    pub fn is_uid_function(&self, name: &str) -> bool {
        if self.uid_functions.contains(name) {
            return true;
        }
        builtin_signature(name).is_some_and(|sig| sig.ret.is_uid_class())
    }

    /// Returns `true` if an expression denotes UID-class data.
    #[must_use]
    pub fn is_uid_expr(&self, function: &str, expr: &Expr) -> bool {
        match expr {
            Expr::Ident(name) => self.is_uid_var(function, name),
            Expr::Call(name, _) => self.is_uid_function(name),
            Expr::Unary(_, inner) => self.is_uid_expr(function, inner),
            Expr::Binary(op, lhs, rhs) => {
                !op.is_comparison()
                    && !matches!(
                        op,
                        nvariant_vm::ast::BinOp::LogAnd | nvariant_vm::ast::BinOp::LogOr
                    )
                    && (self.is_uid_expr(function, lhs) || self.is_uid_expr(function, rhs))
            }
            _ => false,
        }
    }

    /// Returns `true` if `name` is influenced by UID data (tainted) in
    /// `function`. UID-class variables themselves are always considered
    /// influenced.
    #[must_use]
    pub fn is_tainted(&self, function: &str, name: &str) -> bool {
        if self.is_uid_var(function, name) {
            return true;
        }
        if let Some(locals) = self.tainted_locals.get(function) {
            if locals.contains(name) {
                return true;
            }
        }
        if self
            .type_info
            .locals
            .get(function)
            .is_some_and(|l| l.contains_key(name))
        {
            return false;
        }
        self.tainted_globals.contains(name)
    }

    /// Returns `true` if an expression contains UID-influenced data anywhere
    /// inside it.
    #[must_use]
    pub fn is_tainted_expr(&self, function: &str, expr: &Expr) -> bool {
        match expr {
            Expr::Ident(name) => self.is_tainted(function, name),
            Expr::IntLit(_) | Expr::StrLit(_) | Expr::AddrOf(_) => false,
            Expr::Unary(_, inner) | Expr::Deref(inner) => self.is_tainted_expr(function, inner),
            Expr::Index(base, index) => {
                self.is_tainted_expr(function, base) || self.is_tainted_expr(function, index)
            }
            Expr::Binary(_, lhs, rhs) => {
                self.is_tainted_expr(function, lhs) || self.is_tainted_expr(function, rhs)
            }
            Expr::Call(name, args) => {
                self.is_uid_function(name)
                    || self.call_takes_uid_args(name)
                    || self.tainted_functions.contains(name)
                    || args.iter().any(|a| self.is_tainted_expr(function, a))
            }
        }
    }

    /// Returns `true` if the named user function's result is UID-influenced.
    #[must_use]
    pub fn is_tainted_function(&self, name: &str) -> bool {
        self.tainted_functions.contains(name)
            || self.is_uid_function(name)
            || self.call_takes_uid_args(name)
    }

    /// Returns `true` if a call to `name` takes UID-class parameters (so its
    /// result — e.g. the return code of `setuid` — is UID-influenced).
    #[must_use]
    pub fn call_takes_uid_args(&self, name: &str) -> bool {
        let sig = self
            .type_info
            .functions
            .get(name)
            .cloned()
            .or_else(|| builtin_signature(name));
        sig.is_some_and(|sig| sig.params.iter().any(|p| p.is_uid_class()))
    }

    /// The declared or inferred UID variables of a function (for reporting).
    #[must_use]
    pub fn uid_vars_of(&self, function: &str) -> Vec<String> {
        self.uid_locals
            .get(function)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The globals holding UID-class data (for reporting).
    #[must_use]
    pub fn uid_globals(&self) -> Vec<String> {
        self.uid_globals.iter().cloned().collect()
    }

    // ----- inference ------------------------------------------------------------

    /// Propagates UID-ness through assignments and parameter passing until a
    /// fixpoint: `x = getuid()` marks `x`; `setuid(y)` marks `y`; `x = y`
    /// propagates between variables; functions returning marked values are
    /// marked as UID-returning.
    fn infer_fixpoint(&mut self, program: &Program) {
        loop {
            let mut changed = false;
            for function in &program.functions {
                changed |= self.infer_function(program, function);
            }
            if !changed {
                break;
            }
        }
    }

    fn mark_uid_var(&mut self, function: &Function, name: &str) -> bool {
        let is_local = self
            .type_info
            .locals
            .get(&function.name)
            .is_some_and(|l| l.contains_key(name));
        if is_local {
            self.uid_locals
                .entry(function.name.clone())
                .or_default()
                .insert(name.to_string())
        } else {
            self.uid_globals.insert(name.to_string())
        }
    }

    fn infer_function(&mut self, _program: &Program, function: &Function) -> bool {
        let mut changed = false;
        let mut stack: Vec<&Stmt> = function.body.iter().collect();
        while let Some(stmt) = stack.pop() {
            match stmt {
                Stmt::VarDecl {
                    name,
                    init: Some(init),
                    ..
                } if self.is_uid_expr(&function.name, init) => {
                    changed |= self.mark_uid_var(function, name);
                }
                Stmt::Assign {
                    target: LValue::Var(name),
                    value,
                } if self.is_uid_expr(&function.name, value) => {
                    changed |= self.mark_uid_var(function, name);
                }
                Stmt::Return(Some(value))
                    if self.is_uid_expr(&function.name, value)
                        && !function.ret.is_uid_class()
                        && function.ret != Type::Void =>
                {
                    changed |= self.uid_functions.insert(function.name.clone());
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    stack.extend(then_body.iter());
                    stack.extend(else_body.iter());
                }
                Stmt::While { body, .. } => stack.extend(body.iter()),
                _ => {}
            }
            // Arguments passed where a UID parameter is expected.
            if let Some(exprs) = stmt_expressions(stmt) {
                for expr in exprs {
                    self.infer_from_calls(function, expr, &mut changed);
                }
            }
        }
        changed
    }

    fn infer_from_calls(&mut self, function: &Function, expr: &Expr, changed: &mut bool) {
        match expr {
            Expr::Call(name, args) => {
                let sig = self
                    .type_info
                    .functions
                    .get(name)
                    .cloned()
                    .or_else(|| builtin_signature(name));
                if let Some(sig) = sig {
                    for (param, arg) in sig.params.iter().zip(args) {
                        if param.is_uid_class() {
                            if let Expr::Ident(var) = arg {
                                *changed |= self.mark_uid_var(function, var);
                            }
                        }
                    }
                }
                for arg in args {
                    self.infer_from_calls(function, arg, changed);
                }
            }
            Expr::Unary(_, inner) | Expr::Deref(inner) => {
                self.infer_from_calls(function, inner, changed);
            }
            Expr::Binary(_, lhs, rhs) | Expr::Index(lhs, rhs) => {
                self.infer_from_calls(function, lhs, changed);
                self.infer_from_calls(function, rhs, changed);
            }
            _ => {}
        }
    }

    // ----- taint ---------------------------------------------------------------

    fn mark_tainted(&mut self, function: &Function, name: &str) -> bool {
        let is_local = self
            .type_info
            .locals
            .get(&function.name)
            .is_some_and(|l| l.contains_key(name));
        if is_local {
            self.tainted_locals
                .entry(function.name.clone())
                .or_default()
                .insert(name.to_string())
        } else {
            self.tainted_globals.insert(name.to_string())
        }
    }

    fn taint_fixpoint(&mut self, program: &Program) {
        loop {
            let mut changed = false;
            for function in &program.functions {
                let mut performs_uid_operations = false;
                let mut stack: Vec<&Stmt> = function.body.iter().collect();
                while let Some(stmt) = stack.pop() {
                    match stmt {
                        Stmt::VarDecl {
                            name,
                            init: Some(init),
                            ..
                        } if self.is_tainted_expr(&function.name, init) => {
                            changed |= self.mark_tainted(function, name);
                        }
                        Stmt::Assign {
                            target: LValue::Var(name),
                            value,
                        } if self.is_tainted_expr(&function.name, value) => {
                            changed |= self.mark_tainted(function, name);
                        }
                        Stmt::Return(Some(value))
                            if self.is_tainted_expr(&function.name, value) =>
                        {
                            performs_uid_operations = true;
                        }
                        Stmt::If {
                            then_body,
                            else_body,
                            ..
                        } => {
                            stack.extend(then_body.iter());
                            stack.extend(else_body.iter());
                        }
                        Stmt::While { body, .. } => stack.extend(body.iter()),
                        _ => {}
                    }
                    if let Some(exprs) = stmt_expressions(stmt) {
                        for expr in exprs {
                            if expr_performs_uid_call(self, expr) {
                                performs_uid_operations = true;
                            }
                        }
                    }
                }
                if performs_uid_operations {
                    changed |= self.tainted_functions.insert(function.name.clone());
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Returns `true` if the expression contains a call whose callee is
/// UID-returning, UID-taking, or already known to be UID-influenced.
fn expr_performs_uid_call(ctx: &UidContext, expr: &Expr) -> bool {
    match expr {
        Expr::Call(name, args) => {
            ctx.is_tainted_function(name) || args.iter().any(|a| expr_performs_uid_call(ctx, a))
        }
        Expr::Unary(_, inner) | Expr::Deref(inner) => expr_performs_uid_call(ctx, inner),
        Expr::Binary(_, lhs, rhs) | Expr::Index(lhs, rhs) => {
            expr_performs_uid_call(ctx, lhs) || expr_performs_uid_call(ctx, rhs)
        }
        _ => false,
    }
}

/// The expressions directly contained in a statement (not recursing into
/// nested statements).
fn stmt_expressions(stmt: &Stmt) -> Option<Vec<&Expr>> {
    match stmt {
        Stmt::VarDecl { init, .. } => Some(init.iter().collect()),
        Stmt::Assign { target, value } => {
            let mut exprs = vec![value];
            match target {
                LValue::Index(base, index) => {
                    exprs.push(base);
                    exprs.push(index);
                }
                LValue::Deref(inner) => exprs.push(inner),
                LValue::Var(_) => {}
            }
            Some(exprs)
        }
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => Some(vec![cond]),
        Stmt::Return(value) => Some(value.iter().collect()),
        Stmt::Expr(expr) => Some(vec![expr]),
        Stmt::Break | Stmt::Continue => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::parse_program;

    fn analyze(src: &str) -> UidContext {
        UidContext::analyze(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn declared_uid_types_are_recognized() {
        let ctx = analyze(
            r"
            var server_uid: uid_t;
            var server_gid: gid_t;
            var counter: int;
            fn f(u: uid_t, n: int) -> int { return n; }
            ",
        );
        assert!(ctx.is_uid_var("f", "server_uid"));
        assert!(ctx.is_uid_var("f", "server_gid"));
        assert!(!ctx.is_uid_var("f", "counter"));
        assert!(ctx.is_uid_var("f", "u"));
        assert!(!ctx.is_uid_var("f", "n"));
        assert_eq!(ctx.uid_globals(), vec!["server_gid", "server_uid"]);
        assert_eq!(ctx.uid_vars_of("f"), vec!["u"]);
    }

    #[test]
    fn dataflow_inference_finds_untyped_uids() {
        // The §4 scenario: the programmer used plain ints.
        let ctx = analyze(
            r"
            var cached: int;
            fn drop_privileges(target: int) -> int {
                return setuid(target);
            }
            fn main() -> int {
                var local: int;
                cached = getuid();
                local = cached;
                return drop_privileges(local);
            }
            ",
        );
        assert!(ctx.is_uid_var("main", "cached"));
        assert!(ctx.is_uid_var("main", "local"));
        assert!(ctx.is_uid_var("drop_privileges", "target"));
    }

    #[test]
    fn uid_returning_user_functions_are_inferred() {
        let ctx = analyze(
            r"
            fn lookup() -> uid_t { return getuid(); }
            fn indirect() -> int { return getuid(); }
            fn plain() -> int { return 3; }
            fn main() -> int { return 0; }
            ",
        );
        assert!(ctx.is_uid_function("lookup"));
        assert!(ctx.is_uid_function("indirect"));
        assert!(!ctx.is_uid_function("plain"));
        assert!(ctx.is_uid_function("getuid"));
        assert!(!ctx.is_uid_function("open"));
    }

    #[test]
    fn uid_expressions_propagate_through_arithmetic_but_not_comparisons() {
        let ctx = analyze("fn f(u: uid_t) -> int { return 0; }");
        let masked = nvariant_vm::Expr::binary(
            nvariant_vm::BinOp::BitXor,
            nvariant_vm::Expr::ident("u"),
            nvariant_vm::Expr::int(0x7FFF_FFFF),
        );
        assert!(ctx.is_uid_expr("f", &masked));
        let compared = nvariant_vm::Expr::binary(
            nvariant_vm::BinOp::Eq,
            nvariant_vm::Expr::ident("u"),
            nvariant_vm::Expr::int(0),
        );
        assert!(!ctx.is_uid_expr("f", &compared));
    }

    #[test]
    fn taint_covers_uid_influenced_results() {
        let ctx = analyze(
            r"
            var flag: int;
            fn main() -> int {
                var rc: int;
                var untouched: int;
                rc = setuid(48);
                flag = rc + 1;
                untouched = 5;
                if (rc != 0) { return 1; }
                return untouched;
            }
            ",
        );
        assert!(ctx.is_tainted("main", "rc"));
        assert!(ctx.is_tainted("main", "flag"));
        assert!(!ctx.is_tainted("main", "untouched"));
        // UID variables are themselves "influenced".
        let ctx2 = analyze("var u: uid_t; fn main() -> int { return 0; }");
        assert!(ctx2.is_tainted("main", "u"));
    }

    #[test]
    fn locals_shadow_globals_for_uid_and_taint_queries() {
        let ctx = analyze(
            r"
            var uid: uid_t;
            fn f() -> int { var uid: int; uid = 3; return uid; }
            fn g() -> int { return 0; }
            ",
        );
        assert!(!ctx.is_uid_var("f", "uid"));
        assert!(ctx.is_uid_var("g", "uid"));
        assert!(!ctx.is_tainted("f", "uid"));
    }

    #[test]
    fn call_takes_uid_args_detection() {
        let ctx = analyze(
            r"
            fn wrapper(u: uid_t) -> int { return setuid(u); }
            fn plain(n: int) -> int { return n; }
            fn main() -> int { return 0; }
            ",
        );
        assert!(ctx.call_takes_uid_args("setuid"));
        assert!(ctx.call_takes_uid_args("wrapper"));
        assert!(ctx.call_takes_uid_args("cc_eq"));
        assert!(!ctx.call_takes_uid_args("plain"));
        assert!(!ctx.call_takes_uid_args("open"));
    }

    #[test]
    fn analyze_rejects_ill_typed_programs() {
        let program = parse_program("fn main() -> int { return missing; }").unwrap();
        assert!(UidContext::analyze(&program).is_err());
    }
}
