//! The transformation driver: pass ordering, options, and per-variant
//! program generation.

use crate::inference::UidContext;
use crate::passes;
use crate::stats::TransformStats;
use nvariant_diversity::UidTransform;
use nvariant_vm::ast::Program;
use nvariant_vm::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Options controlling the transformation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformOptions {
    /// Whether to insert the Table 2 detection calls (`uid_value`,
    /// `cond_chk`, `cc_*`). Disabling this models the §5 alternative of
    /// relying solely on the pre-existing system-call boundary checks, at
    /// the cost of detection precision (used by the ablation bench).
    pub insert_detection_calls: bool,
    /// Function names treated as log/format sinks whose UID arguments are
    /// removed (§4's Apache error-log workaround).
    pub log_sinks: Vec<String>,
    /// Names of globals whose UID literals the reexpression pass
    /// deliberately leaves in canonical form (initializers, assignments,
    /// and literals compared with or passed alongside the global). Always
    /// empty in production configurations; non-empty values seed the
    /// static verifier's P-Residual regression, the transform-level
    /// analogue of PR 6's weakened monitor.
    pub skip_reexpression_globals: Vec<String>,
}

impl Default for TransformOptions {
    fn default() -> Self {
        TransformOptions {
            insert_detection_calls: true,
            log_sinks: vec!["utoa".to_string()],
            skip_reexpression_globals: Vec::new(),
        }
    }
}

/// Errors produced by the transformation driver.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TransformError {
    /// The input program failed type checking.
    Type(TypeError),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Type(e) => write!(f, "cannot transform ill-typed program: {e}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<TypeError> for TransformError {
    fn from(e: TypeError) -> Self {
        TransformError::Type(e)
    }
}

/// A program prepared for one variant, together with the change counts.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformedVariant {
    /// The transformed program (instrumented, with constants re-expressed
    /// for this variant).
    pub program: Program,
    /// Per-category change counts.
    pub stats: TransformStats,
}

/// The automated UID transformation of §3.3–§3.5.
///
/// # Example
///
/// ```
/// use nvariant_diversity::UidTransform;
/// use nvariant_transform::{TransformOptions, UidTransformer};
/// use nvariant_vm::parse_program;
///
/// let program = parse_program(r#"
///     var server_uid: uid_t;
///     fn main() -> int {
///         server_uid = getuid();
///         if (server_uid == 0) { return setuid(48); }
///         return 0;
///     }
/// "#)?;
/// let transformer = UidTransformer::new(TransformOptions::default());
/// let (instrumented, stats) = transformer.instrument(&program)?;
/// assert!(stats.comparison_exposures >= 1);
/// assert!(nvariant_vm::pretty_print(&instrumented).contains("cc_eq"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UidTransformer {
    options: TransformOptions,
}

impl UidTransformer {
    /// Creates a transformer with the given options.
    #[must_use]
    pub fn new(options: TransformOptions) -> Self {
        UidTransformer { options }
    }

    /// The options in effect.
    #[must_use]
    pub fn options(&self) -> &TransformOptions {
        &self.options
    }

    /// Applies the variant-independent instrumentation: explicit constants,
    /// `cc_*` comparison exposure, log sanitization, `uid_value` exposure,
    /// and `cond_chk` insertion.
    ///
    /// The result is the program the paper calls the *transformed* program
    /// (Configuration 2); all variants share this exact instruction stream.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::Type`] if the program does not type-check.
    pub fn instrument(
        &self,
        program: &Program,
    ) -> Result<(Program, TransformStats), TransformError> {
        let mut instrumented = program.clone();
        let ctx = UidContext::analyze(&instrumented)?;
        let mut stats = TransformStats {
            implicit_constants_made_explicit: passes::explicit::run(&mut instrumented, &ctx),
            ..TransformStats::default()
        };
        if self.options.insert_detection_calls {
            stats.comparison_exposures = passes::comparisons::run(&mut instrumented, &ctx);
        }
        stats.log_sinks_sanitized =
            passes::logs::run(&mut instrumented, &ctx, &self.options.log_sinks);
        if self.options.insert_detection_calls {
            stats.single_value_exposures = passes::detection::run(&mut instrumented, &ctx);
            stats.conditional_checks = passes::cond_chk::run(&mut instrumented, &ctx);
        }
        Ok((instrumented, stats))
    }

    /// Re-expresses the UID constants of an (instrumented) program for one
    /// variant, returning the new program and the number of constants
    /// changed.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::Type`] if the program does not type-check.
    pub fn reexpress(
        &self,
        program: &Program,
        transform: &UidTransform,
    ) -> Result<(Program, usize), TransformError> {
        let mut reexpressed = program.clone();
        let ctx = UidContext::analyze(&reexpressed)?;
        let count = passes::constants::run(
            &mut reexpressed,
            &ctx,
            transform,
            &self.options.skip_reexpression_globals,
        );
        Ok((reexpressed, count))
    }

    /// Produces the complete program for one variant: instrumentation plus
    /// per-variant constant reexpression.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::Type`] if the program does not type-check.
    pub fn transform_for_variant(
        &self,
        program: &Program,
        transform: &UidTransform,
    ) -> Result<TransformedVariant, TransformError> {
        let (instrumented, mut stats) = self.instrument(program)?;
        let (reexpressed, constants) = self.reexpress(&instrumented, transform)?;
        stats.uid_constants_reexpressed = constants;
        Ok(TransformedVariant {
            program: reexpressed,
            stats,
        })
    }

    /// Produces programs for every variant of a UID-diversity deployment:
    /// one per [`UidTransform`], all sharing the same instrumentation.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::Type`] if the program does not type-check.
    pub fn transform_for_variants(
        &self,
        program: &Program,
        transforms: &[UidTransform],
    ) -> Result<Vec<TransformedVariant>, TransformError> {
        let (instrumented, stats) = self.instrument(program)?;
        let mut variants = Vec::with_capacity(transforms.len());
        for transform in transforms {
            let (reexpressed, constants) = self.reexpress(&instrumented, transform)?;
            let mut variant_stats = stats;
            variant_stats.uid_constants_reexpressed = constants;
            variants.push(TransformedVariant {
                program: reexpressed,
                stats: variant_stats,
            });
        }
        Ok(variants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::{compile_program, parse_program, pretty_print};

    const SERVER_FRAGMENT: &str = r"
        var server_uid: uid_t;
        var request_count: int = 0;

        fn utoa(value: int, dst: ptr) -> int {
            dst[0] = '0' + value % 10;
            dst[1] = 0;
            return 1;
        }

        fn audit(who: uid_t) -> int {
            var line: buf[16];
            utoa(who, &line);
            return write(2, &line, 2);
        }

        fn drop_privileges() -> int {
            var rc: int;
            server_uid = getuid();
            if (!server_uid) { return 0 - 1; }
            rc = setuid(server_uid);
            if (rc != 0) { return 0 - 1; }
            audit(server_uid);
            return 0;
        }

        fn main() -> int {
            if (drop_privileges() != 0) { return 1; }
            if (server_uid >= 1000) { request_count = request_count + 1; }
            if (geteuid() == 0) { return 2; }
            return 0;
        }
    ";

    #[test]
    fn instrumentation_counts_every_category() {
        let program = parse_program(SERVER_FRAGMENT).unwrap();
        let transformer = UidTransformer::default();
        let (instrumented, stats) = transformer.instrument(&program).unwrap();
        let text = pretty_print(&instrumented);

        assert_eq!(stats.implicit_constants_made_explicit, 1);
        assert!(stats.comparison_exposures >= 3, "stats: {stats:?}");
        assert_eq!(stats.single_value_exposures, 1, "audit(server_uid)");
        assert!(
            stats.conditional_checks >= 2,
            "rc and drop_privileges checks"
        );
        assert_eq!(stats.log_sinks_sanitized, 1, "utoa(who, ...)");
        assert_eq!(stats.uid_constants_reexpressed, 0);

        assert!(text.contains("cc_eq((server_uid == 0)") || text.contains("cc_eq(server_uid, 0)"));
        assert!(text.contains("audit(uid_value(server_uid))"));
        assert!(text.contains("cond_chk"));
        assert!(text.contains("utoa(0, &line)"));
        // The instrumented program still compiles.
        assert!(compile_program(&instrumented).is_ok());
    }

    #[test]
    fn variant_generation_shares_instrumentation_and_differs_only_in_constants() {
        let program = parse_program(SERVER_FRAGMENT).unwrap();
        let transformer = UidTransformer::default();
        let variants = transformer
            .transform_for_variants(
                &program,
                &[UidTransform::Identity, UidTransform::paper_mask()],
            )
            .unwrap();
        assert_eq!(variants.len(), 2);
        let v0 = pretty_print(&variants[0].program);
        let v1 = pretty_print(&variants[1].program);
        assert_ne!(v0, v1);
        assert_eq!(variants[0].stats.uid_constants_reexpressed, 0);
        assert!(variants[1].stats.uid_constants_reexpressed >= 2);
        // Same statement structure: only literals differ.
        assert_eq!(v0.lines().count(), v1.lines().count());
        assert!(v1.contains("0x7fffffff") || v1.contains("0x7ffffc17"));
        // Both compile.
        assert!(compile_program(&variants[0].program).is_ok());
        assert!(compile_program(&variants[1].program).is_ok());
    }

    #[test]
    fn disabling_detection_calls_still_reexpresses_constants() {
        let program = parse_program(SERVER_FRAGMENT).unwrap();
        let transformer = UidTransformer::new(TransformOptions {
            insert_detection_calls: false,
            log_sinks: vec!["utoa".to_string()],
            skip_reexpression_globals: Vec::new(),
        });
        let variant = transformer
            .transform_for_variant(&program, &UidTransform::paper_mask())
            .unwrap();
        assert_eq!(variant.stats.comparison_exposures, 0);
        assert_eq!(variant.stats.single_value_exposures, 0);
        assert_eq!(variant.stats.conditional_checks, 0);
        assert!(variant.stats.uid_constants_reexpressed >= 2);
        let text = pretty_print(&variant.program);
        assert!(!text.contains("cc_eq"));
        assert!(text.contains("0x7fffffff"));
    }

    #[test]
    fn ill_typed_programs_are_rejected() {
        let program = parse_program("fn main() -> int { return missing; }").unwrap();
        let transformer = UidTransformer::default();
        assert!(matches!(
            transformer.instrument(&program),
            Err(TransformError::Type(_))
        ));
        assert!(transformer
            .transform_for_variant(&program, &UidTransform::paper_mask())
            .is_err());
    }

    #[test]
    fn identity_variant_is_textually_identical_to_the_instrumented_program() {
        let program = parse_program(SERVER_FRAGMENT).unwrap();
        let transformer = UidTransformer::default();
        let (instrumented, _) = transformer.instrument(&program).unwrap();
        let variant0 = transformer
            .transform_for_variant(&program, &UidTransform::Identity)
            .unwrap();
        assert_eq!(pretty_print(&instrumented), pretty_print(&variant0.program));
    }
}
