//! Pass: expose single UID value uses through `uid_value`.
//!
//! The paper's example (§3.5): `getpwname(uid)` becomes
//! `getpwname(uid_value(uid))`, so the monitor observes the UID at the point
//! of use, before the (possibly corrupted) value can influence behaviour
//! that only diverges much later. Here the rule is: any UID-class expression
//! passed to a *user-defined* function (the kernel already checks UID
//! arguments of system calls) is wrapped in `uid_value`.

use crate::inference::UidContext;
use crate::passes::rewrite_exprs;
use nvariant_vm::ast::{Expr, Program};
use nvariant_vm::typecheck::builtin_signature;

/// Runs the pass, returning the number of `uid_value` wrappers inserted.
pub fn run(program: &mut Program, ctx: &UidContext) -> usize {
    let mut count = 0;
    rewrite_exprs(program, |function, expr| match expr {
        Expr::Call(name, args) if builtin_signature(&name).is_none() => {
            let wrapped: Vec<Expr> = args
                .into_iter()
                .map(|arg| {
                    let already_wrapped =
                        matches!(&arg, Expr::Call(callee, _) if callee == "uid_value");
                    if !already_wrapped && ctx.is_uid_expr(function, &arg) {
                        count += 1;
                        Expr::Call("uid_value".to_string(), vec![arg])
                    } else {
                        arg
                    }
                })
                .collect();
            Expr::Call(name, wrapped)
        }
        other => other,
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::{parse_program, pretty_print};

    fn transform(src: &str) -> (String, usize) {
        let mut program = parse_program(src).unwrap();
        let ctx = UidContext::analyze(&program).unwrap();
        let count = run(&mut program, &ctx);
        (pretty_print(&program), count)
    }

    #[test]
    fn uid_arguments_to_user_functions_are_wrapped() {
        let (text, count) = transform(
            r"
            var server_uid: uid_t;
            fn audit(who: uid_t, what: int) -> int { return what; }
            fn main() -> int {
                return audit(server_uid, 3);
            }
            ",
        );
        assert_eq!(count, 1);
        assert!(text.contains("audit(uid_value(server_uid), 3)"));
    }

    #[test]
    fn uid_returning_calls_as_arguments_are_wrapped() {
        let (text, count) = transform(
            r"
            fn log_owner(who: uid_t) -> int { return 0; }
            fn main() -> int { return log_owner(getuid()); }
            ",
        );
        assert_eq!(count, 1);
        assert!(text.contains("log_owner(uid_value(getuid()))"));
    }

    #[test]
    fn syscall_arguments_are_not_wrapped() {
        // The kernel wrapper already applies the inverse reexpression and
        // checks setuid's argument; wrapping again would be redundant.
        let (text, count) = transform(
            r"
            var server_uid: uid_t;
            fn main() -> int { return setuid(server_uid); }
            ",
        );
        assert_eq!(count, 0);
        assert!(text.contains("setuid(server_uid)"));
        assert!(!text.contains("uid_value"));
    }

    #[test]
    fn non_uid_arguments_are_untouched_and_wrapping_is_idempotent() {
        let src = r"
            var server_uid: uid_t;
            fn audit(who: uid_t, what: int) -> int { return what; }
            fn main() -> int { return audit(uid_value(server_uid), strlenish(4)); }
            fn strlenish(n: int) -> int { return n; }
        ";
        let mut program = parse_program(src).unwrap();
        let ctx = UidContext::analyze(&program).unwrap();
        let first = run(&mut program, &ctx);
        assert_eq!(first, 0, "already-wrapped arguments must not be re-wrapped");
        let second = run(&mut program, &ctx);
        assert_eq!(second, 0);
        let text = pretty_print(&program);
        assert!(!text.contains("uid_value(uid_value"));
    }
}
