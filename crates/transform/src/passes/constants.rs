//! Pass (per variant): replace UID constants with their re-expressed values.
//!
//! This is the half of the transformation that actually differs between
//! variants: every constant that denotes a UID — global initializers of
//! UID-typed variables, literals assigned or compared to UID data, literals
//! passed where a UID parameter is expected — is replaced by `Rᵢ(constant)`.

use crate::inference::UidContext;
use crate::passes::rewrite_exprs;
use nvariant_diversity::UidTransform;
use nvariant_types::Uid;
use nvariant_vm::ast::{Expr, Program, Stmt};
use nvariant_vm::typecheck::builtin_signature;

/// Runs the pass, returning the number of constants re-expressed.
///
/// `skip_globals` names globals whose UID literals are deliberately left in
/// canonical form — the seeded weakness the static verifier's P-Residual
/// check must catch. It is empty in every production configuration.
pub fn run(
    program: &mut Program,
    ctx: &UidContext,
    transform: &UidTransform,
    skip_globals: &[String],
) -> usize {
    if transform.is_identity() {
        // Variant 0 keeps the original program text (§3.3: "the original
        // program can be used unchanged for the first variant").
        return 0;
    }
    let skipped = |name: &str| skip_globals.iter().any(|s| s == name);
    let mut count = 0;

    let reexpress = |value: i64, count: &mut usize| -> Expr {
        let raw = value as u32;
        let reexpressed = transform.apply(Uid::new(raw)).as_u32();
        *count += 1;
        Expr::IntLit(i64::from(reexpressed))
    };

    // Global initializers of UID-typed globals.
    for global in &mut program.globals {
        if global.ty.is_uid_class() && !skipped(&global.name) {
            if let Some(Expr::IntLit(value)) = global.init {
                global.init = Some(reexpress(value, &mut count));
            }
        }
    }

    // Declarations and assignments of UID variables from literal constants.
    for function in &mut program.functions {
        let fname = function.name.clone();
        visit_stmts(&mut function.body, &mut |stmt| match stmt {
            Stmt::VarDecl {
                name,
                init: Some(Expr::IntLit(value)),
                ..
            } if ctx.is_uid_var(&fname, name) && !skipped(name) => {
                let new_init = reexpress(*value, &mut count);
                if let Stmt::VarDecl { init, .. } = stmt {
                    *init = Some(new_init);
                }
            }
            Stmt::Assign {
                target: nvariant_vm::ast::LValue::Var(name),
                value: Expr::IntLit(literal),
            } if ctx.is_uid_var(&fname, name) && !skipped(name) => {
                let new_value = reexpress(*literal, &mut count);
                if let Stmt::Assign { value, .. } = stmt {
                    *value = new_value;
                }
            }
            _ => {}
        });
    }

    // Literals in UID argument positions (setuid(0), cc_eq(uid, 0), user
    // functions with uid_t parameters) and literals compared directly with
    // UID expressions.
    rewrite_exprs(program, |function, expr| match expr {
        Expr::Call(name, args) => {
            let sig = ctx
                .type_info()
                .functions
                .get(&name)
                .cloned()
                .or_else(|| builtin_signature(&name));
            // A literal passed alongside a skipped global (e.g. the `0` of
            // `cc_eq(server_uid, 0)`) is left canonical too: the weakness
            // must survive the comparison-exposure rewrite.
            let alongside_skipped = args
                .iter()
                .any(|arg| matches!(arg, Expr::Ident(name) if skipped(name)));
            let args = match sig {
                Some(sig) => args
                    .into_iter()
                    .enumerate()
                    .map(|(i, arg)| match (&arg, sig.params.get(i)) {
                        (Expr::IntLit(value), Some(param))
                            if param.is_uid_class() && !alongside_skipped =>
                        {
                            reexpress(*value, &mut count)
                        }
                        _ => arg,
                    })
                    .collect(),
                None => args,
            };
            Expr::Call(name, args)
        }
        Expr::Binary(op, lhs, rhs) if op.is_comparison() => {
            let lhs_uid = ctx.is_uid_expr(function, &lhs);
            let rhs_uid = ctx.is_uid_expr(function, &rhs);
            let against_skipped = matches!(&*lhs, Expr::Ident(name) if skipped(name))
                || matches!(&*rhs, Expr::Ident(name) if skipped(name));
            let (lhs, rhs) = match (&*lhs, &*rhs, lhs_uid, rhs_uid) {
                (_, Expr::IntLit(value), true, false) if !against_skipped => {
                    (lhs, Box::new(reexpress(*value, &mut count)))
                }
                (Expr::IntLit(value), _, false, true) if !against_skipped => {
                    (Box::new(reexpress(*value, &mut count)), rhs)
                }
                _ => (lhs, rhs),
            };
            Expr::Binary(op, lhs, rhs)
        }
        other => other,
    });

    count
}

fn visit_stmts(stmts: &mut [Stmt], visit: &mut impl FnMut(&mut Stmt)) {
    for stmt in stmts {
        visit(stmt);
        match stmt {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                visit_stmts(then_body, visit);
                visit_stmts(else_body, visit);
            }
            Stmt::While { body, .. } => visit_stmts(body, visit),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::{parse_program, pretty_print};

    fn transform(src: &str, t: UidTransform) -> (String, usize) {
        transform_skipping(src, t, &[])
    }

    fn transform_skipping(src: &str, t: UidTransform, skip: &[&str]) -> (String, usize) {
        let mut program = parse_program(src).unwrap();
        let ctx = UidContext::analyze(&program).unwrap();
        let skip: Vec<String> = skip.iter().map(|s| (*s).to_string()).collect();
        let count = run(&mut program, &ctx, &t, &skip);
        (pretty_print(&program), count)
    }

    const MASKED_ROOT: &str = "0x7fffffff";

    #[test]
    fn identity_transform_changes_nothing() {
        let src = "var u: uid_t = 0; fn main() -> int { return setuid(0); }";
        let (text, count) = transform(src, UidTransform::Identity);
        assert_eq!(count, 0);
        assert!(text.contains("setuid(0)"));
        assert!(text.contains("var u: uid_t = 0"));
    }

    #[test]
    fn global_initializers_are_reexpressed() {
        let (text, count) = transform(
            "var u: uid_t = 48; var n: int = 48; fn main() -> int { return 0; }",
            UidTransform::paper_mask(),
        );
        assert_eq!(count, 1);
        assert!(text.contains(&format!("var u: uid_t = {:#x}", 48u32 ^ 0x7FFF_FFFF)));
        assert!(text.contains("var n: int = 48"));
    }

    #[test]
    fn syscall_and_detection_call_arguments_are_reexpressed() {
        let (text, count) = transform(
            r#"
            var u: uid_t;
            fn main() -> int {
                setuid(0);
                seteuid(48);
                cc_eq(u, 0);
                open("/etc/passwd", 0);
                return 0;
            }
            "#,
            UidTransform::paper_mask(),
        );
        assert_eq!(count, 3);
        assert!(text.contains(&format!("setuid({MASKED_ROOT})")));
        assert!(text.contains(&format!("seteuid({:#x})", 48u32 ^ 0x7FFF_FFFF)));
        assert!(text.contains(&format!("cc_eq(u, {MASKED_ROOT})")));
        // open's flags argument is not a UID and stays 0.
        assert!(text.contains(r#"open("/etc/passwd", 0)"#));
    }

    #[test]
    fn assignments_and_declarations_are_reexpressed() {
        let (text, count) = transform(
            r"
            fn main() -> int {
                var u: uid_t = 0;
                var n: int = 0;
                u = 1000;
                n = 1000;
                return 0;
            }
            ",
            UidTransform::paper_mask(),
        );
        assert_eq!(count, 2);
        assert!(text.contains(&format!("var u: uid_t = {MASKED_ROOT}")));
        assert!(text.contains("var n: int = 0"));
        assert!(text.contains(&format!("u = {:#x}", 1000u32 ^ 0x7FFF_FFFF)));
        assert!(text.contains("n = 1000"));
    }

    #[test]
    fn raw_comparisons_with_literals_are_reexpressed() {
        // If a comparison was for some reason not rewritten to cc_*, the
        // literal is still re-expressed so normal equivalence holds.
        let (text, count) = transform(
            r"
            var u: uid_t;
            fn main() -> int {
                if (u == 0) { return 1; }
                if (1000 != u) { return 2; }
                return 0;
            }
            ",
            UidTransform::paper_mask(),
        );
        assert_eq!(count, 2);
        assert!(text.contains(&format!("(u == {MASKED_ROOT})")));
        assert!(text.contains(&format!("({:#x} != u)", 1000u32 ^ 0x7FFF_FFFF)));
    }

    #[test]
    fn user_functions_with_uid_parameters_are_reexpressed() {
        let (text, count) = transform(
            r"
            fn become(who: uid_t) -> int { return setuid(who); }
            fn main() -> int { return become(0); }
            ",
            UidTransform::paper_mask(),
        );
        assert_eq!(count, 1);
        assert!(text.contains(&format!("become({MASKED_ROOT})")));
    }

    #[test]
    fn skipped_globals_keep_canonical_literals() {
        let src = r"
            var server_uid: uid_t = 48;
            var other_uid: uid_t = 48;
            fn main() -> int {
                server_uid = 1000;
                if (server_uid == 0) { return 1; }
                cc_eq(server_uid, 0);
                cc_eq(other_uid, 0);
                return setuid(0);
            }
        ";
        let (text, count) = transform_skipping(src, UidTransform::paper_mask(), &["server_uid"]);
        // server_uid's initializer, assignment, comparison literal and
        // companion cc_eq literal all stay canonical...
        assert!(text.contains("var server_uid: uid_t = 48"), "{text}");
        assert!(text.contains("server_uid = 1000"), "{text}");
        assert!(text.contains("(server_uid == 0)"), "{text}");
        assert!(text.contains("cc_eq(server_uid, 0)"), "{text}");
        // ...while unrelated UID literals are still re-expressed.
        assert!(
            text.contains(&format!(
                "var other_uid: uid_t = {:#x}",
                48 ^ 0x7FFF_FFFFu32
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!("cc_eq(other_uid, {MASKED_ROOT})")),
            "{text}"
        );
        assert!(text.contains(&format!("setuid({MASKED_ROOT})")), "{text}");
        assert_eq!(count, 3);
    }

    #[test]
    fn full_mask_uses_all_bits() {
        let (text, count) = transform(
            "fn main() -> int { return setuid(0); }",
            UidTransform::full_mask(),
        );
        assert_eq!(count, 1);
        assert!(text.contains("setuid(0xffffffff)"));
    }
}
