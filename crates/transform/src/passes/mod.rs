//! The individual transformation passes.
//!
//! Instrumentation passes (applied identically to every variant):
//!
//! * [`explicit`] — make implicit UID constants explicit;
//! * [`comparisons`] — rewrite UID comparisons to `cc_*` detection calls;
//! * [`logs`] — remove UID values from log/format sinks;
//! * [`detection`] — wrap single UID value uses in `uid_value`;
//! * [`cond_chk`] — wrap UID-influenced conditionals in `cond_chk`.
//!
//! Per-variant pass:
//!
//! * [`constants`] — replace UID constants with their re-expressed values.

pub mod comparisons;
pub mod cond_chk;
pub mod constants;
pub mod detection;
pub mod explicit;
pub mod logs;

use nvariant_vm::ast::{Expr, Program, Stmt};

/// Applies `rewrite` to every expression in the program, bottom-up, visiting
/// statement bodies recursively. The rewriter receives the enclosing
/// function's name.
pub(crate) fn rewrite_exprs(program: &mut Program, mut rewrite: impl FnMut(&str, Expr) -> Expr) {
    // Global initializers are constant literals; passes that need to touch
    // them do so directly rather than through this generic walker.
    for function in &mut program.functions {
        let name = function.name.clone();
        for stmt in &mut function.body {
            rewrite_stmt(stmt, &name, &mut rewrite);
        }
    }
}

fn rewrite_stmt(stmt: &mut Stmt, function: &str, rewrite: &mut impl FnMut(&str, Expr) -> Expr) {
    match stmt {
        Stmt::VarDecl { init, .. } => {
            if let Some(init) = init {
                take_and_rewrite(init, function, rewrite);
            }
        }
        Stmt::Assign { target, value } => {
            take_and_rewrite(value, function, rewrite);
            match target {
                nvariant_vm::ast::LValue::Index(base, index) => {
                    take_and_rewrite(base, function, rewrite);
                    take_and_rewrite(index, function, rewrite);
                }
                nvariant_vm::ast::LValue::Deref(inner) => {
                    take_and_rewrite(inner, function, rewrite);
                }
                nvariant_vm::ast::LValue::Var(_) => {}
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            take_and_rewrite(cond, function, rewrite);
            for s in then_body {
                rewrite_stmt(s, function, rewrite);
            }
            for s in else_body {
                rewrite_stmt(s, function, rewrite);
            }
        }
        Stmt::While { cond, body } => {
            take_and_rewrite(cond, function, rewrite);
            for s in body {
                rewrite_stmt(s, function, rewrite);
            }
        }
        Stmt::Return(Some(value)) => take_and_rewrite(value, function, rewrite),
        Stmt::Expr(expr) => take_and_rewrite(expr, function, rewrite),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
    }
}

fn take_and_rewrite(slot: &mut Expr, function: &str, rewrite: &mut impl FnMut(&str, Expr) -> Expr) {
    let expr = std::mem::replace(slot, Expr::IntLit(0));
    *slot = rewrite_expr(expr, function, rewrite);
}

/// Rewrites an expression bottom-up: children first, then the node itself.
pub(crate) fn rewrite_expr(
    expr: Expr,
    function: &str,
    rewrite: &mut impl FnMut(&str, Expr) -> Expr,
) -> Expr {
    let rebuilt = match expr {
        Expr::Unary(op, inner) => {
            Expr::Unary(op, Box::new(rewrite_expr(*inner, function, rewrite)))
        }
        Expr::Binary(op, lhs, rhs) => Expr::Binary(
            op,
            Box::new(rewrite_expr(*lhs, function, rewrite)),
            Box::new(rewrite_expr(*rhs, function, rewrite)),
        ),
        Expr::Call(name, args) => Expr::Call(
            name,
            args.into_iter()
                .map(|a| rewrite_expr(a, function, rewrite))
                .collect(),
        ),
        Expr::Index(base, index) => Expr::Index(
            Box::new(rewrite_expr(*base, function, rewrite)),
            Box::new(rewrite_expr(*index, function, rewrite)),
        ),
        Expr::Deref(inner) => Expr::Deref(Box::new(rewrite_expr(*inner, function, rewrite))),
        leaf @ (Expr::IntLit(_) | Expr::StrLit(_) | Expr::Ident(_) | Expr::AddrOf(_)) => leaf,
    };
    rewrite(function, rebuilt)
}

/// Visits (mutably) every `if`/`while` condition in the program.
pub(crate) fn rewrite_conditions(
    program: &mut Program,
    mut rewrite: impl FnMut(&str, Expr) -> Expr,
) {
    for function in &mut program.functions {
        let name = function.name.clone();
        for stmt in &mut function.body {
            rewrite_conditions_in_stmt(stmt, &name, &mut rewrite);
        }
    }
}

fn rewrite_conditions_in_stmt(
    stmt: &mut Stmt,
    function: &str,
    rewrite: &mut impl FnMut(&str, Expr) -> Expr,
) {
    match stmt {
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let taken = std::mem::replace(cond, Expr::IntLit(0));
            *cond = rewrite(function, taken);
            for s in then_body {
                rewrite_conditions_in_stmt(s, function, rewrite);
            }
            for s in else_body {
                rewrite_conditions_in_stmt(s, function, rewrite);
            }
        }
        Stmt::While { cond, body } => {
            let taken = std::mem::replace(cond, Expr::IntLit(0));
            *cond = rewrite(function, taken);
            for s in body {
                rewrite_conditions_in_stmt(s, function, rewrite);
            }
        }
        _ => {}
    }
}
