//! Pass: remove UID values from log/format sinks.
//!
//! Section 4 of the paper: Apache wrote the UID into an error-log message;
//! left untransformed this causes a benign divergence (the two variants hold
//! different concrete UID values), while converting the value back inside
//! the program would reopen the attack path. The paper's resolution —
//! "we worked around this problem simply by removing the user id value from
//! the log output" — is automated here: any UID-class argument flowing into
//! a configured *format sink* (by default the decimal formatter `utoa`) is
//! replaced by a placeholder constant.

use crate::inference::UidContext;
use crate::passes::rewrite_exprs;
use nvariant_vm::ast::{Expr, Program};

/// The placeholder written in place of a UID value in log output.
pub const SANITIZED_PLACEHOLDER: i64 = 0;

/// Runs the pass, returning the number of sink arguments sanitized.
///
/// `sinks` is the list of function names whose UID-class arguments are
/// scrubbed (the formatting routines the program uses to render values into
/// log lines).
pub fn run(program: &mut Program, ctx: &UidContext, sinks: &[String]) -> usize {
    let mut count = 0;
    rewrite_exprs(program, |function, expr| match expr {
        Expr::Call(name, args) if sinks.iter().any(|s| s == &name) => {
            let sanitized: Vec<Expr> = args
                .into_iter()
                .map(|arg| {
                    if ctx.is_uid_expr(function, &arg) {
                        count += 1;
                        Expr::IntLit(SANITIZED_PLACEHOLDER)
                    } else {
                        arg
                    }
                })
                .collect();
            Expr::Call(name, sanitized)
        }
        other => other,
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::{parse_program, pretty_print};

    fn transform(src: &str, sinks: &[&str]) -> (String, usize) {
        let mut program = parse_program(src).unwrap();
        let ctx = UidContext::analyze(&program).unwrap();
        let sinks: Vec<String> = sinks.iter().map(std::string::ToString::to_string).collect();
        let count = run(&mut program, &ctx, &sinks);
        (pretty_print(&program), count)
    }

    #[test]
    fn uid_values_are_scrubbed_from_sinks() {
        let (text, count) = transform(
            r"
            var server_uid: uid_t;
            fn utoa(value: int, dst: ptr) -> int { return 0; }
            fn main() -> int {
                var line: buf[32];
                utoa(server_uid, &line);
                utoa(42, &line);
                return 0;
            }
            ",
            &["utoa"],
        );
        assert_eq!(count, 1);
        assert!(text.contains("utoa(0, &line)"));
        assert!(text.contains("utoa(42, &line)"));
    }

    #[test]
    fn non_sink_calls_are_untouched() {
        let (text, count) = transform(
            r"
            var server_uid: uid_t;
            fn audit(value: uid_t) -> int { return 0; }
            fn main() -> int { return audit(server_uid); }
            ",
            &["utoa"],
        );
        assert_eq!(count, 0);
        assert!(text.contains("audit(server_uid)"));
    }

    #[test]
    fn multiple_sinks_are_supported() {
        let (_, count) = transform(
            r"
            var server_uid: uid_t;
            fn utoa(value: int, dst: ptr) -> int { return 0; }
            fn log_int(value: int) -> int { return value; }
            fn main() -> int {
                var line: buf[8];
                utoa(server_uid, &line);
                log_int(getuid());
                return 0;
            }
            ",
            &["utoa", "log_int"],
        );
        assert_eq!(count, 2);
    }

    #[test]
    fn empty_sink_list_changes_nothing() {
        let (_, count) = transform(
            r"
            var server_uid: uid_t;
            fn utoa(value: int, dst: ptr) -> int { return 0; }
            fn main() -> int { var b: buf[8]; utoa(server_uid, &b); return 0; }
            ",
            &[],
        );
        assert_eq!(count, 0);
    }
}
