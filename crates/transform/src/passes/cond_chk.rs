//! Pass: check UID-influenced conditionals with `cond_chk`.
//!
//! The paper's example (§3.5): `(pw == NULL)` — a condition whose value is
//! only indirectly affected by UID data — is replaced by
//! `cond_chk(pw == NULL)`, so the monitor verifies that all variants take
//! the same branch. Direct UID comparisons are *not* wrapped here: they have
//! already been rewritten to `cc_*` calls, which the monitor checks on their
//! own.

use crate::inference::UidContext;
use crate::passes::rewrite_conditions;
use nvariant_vm::ast::{Expr, Program};

/// Names of calls that already constitute a monitor check, so wrapping them
/// again is unnecessary.
fn is_already_checked(cond: &Expr) -> bool {
    matches!(
        cond,
        Expr::Call(name, _)
            if name == "cond_chk"
                || name == "uid_value"
                || name.starts_with("cc_")
    )
}

/// Runs the pass, returning the number of `cond_chk` wrappers inserted.
pub fn run(program: &mut Program, ctx: &UidContext) -> usize {
    let mut count = 0;
    rewrite_conditions(program, |function, cond| {
        if is_already_checked(&cond) || !ctx.is_tainted_expr(function, &cond) {
            cond
        } else {
            count += 1;
            Expr::Call("cond_chk".to_string(), vec![cond])
        }
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::comparisons;
    use nvariant_vm::{parse_program, pretty_print};

    fn transform(src: &str) -> (String, usize) {
        let mut program = parse_program(src).unwrap();
        let ctx = UidContext::analyze(&program).unwrap();
        // Match the driver's ordering: comparisons are exposed first.
        comparisons::run(&mut program, &ctx);
        let count = run(&mut program, &ctx);
        (pretty_print(&program), count)
    }

    #[test]
    fn uid_influenced_conditions_are_wrapped() {
        let (text, count) = transform(
            r"
            fn main() -> int {
                var rc: int;
                rc = setuid(48);
                if (rc != 0) { return 1; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 1);
        assert!(text.contains("if (cond_chk((rc != 0)))"));
    }

    #[test]
    fn direct_uid_comparisons_are_left_to_cc_calls() {
        let (text, count) = transform(
            r"
            var server_uid: uid_t;
            fn main() -> int {
                if (server_uid == 0) { return 1; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 0);
        assert!(text.contains("if (cc_eq(server_uid, 0))"));
        assert!(!text.contains("cond_chk"));
    }

    #[test]
    fn untainted_conditions_are_untouched() {
        let (text, count) = transform(
            r"
            fn main() -> int {
                var n: int = 3;
                while (n > 0) { n = n - 1; }
                if (n == 0) { return 1; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 0);
        assert!(!text.contains("cond_chk"));
    }

    #[test]
    fn compound_conditions_mixing_uid_and_other_data_are_wrapped() {
        let (text, count) = transform(
            r"
            var authorized: int;
            fn main() -> int {
                var rc: int;
                rc = seteuid(getuid());
                authorized = rc + 1;
                if (authorized && 1) { return 1; }
                while (authorized < 10) { authorized = authorized + 1; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 2);
        assert!(text.contains("cond_chk((authorized && 1))"));
        assert!(text.contains("while (cond_chk((authorized < 10)))"));
    }

    #[test]
    fn pass_is_idempotent() {
        let src = r"
            fn main() -> int {
                var rc: int;
                rc = setuid(48);
                if (rc != 0) { return 1; }
                return 0;
            }
        ";
        let mut program = parse_program(src).unwrap();
        let ctx = UidContext::analyze(&program).unwrap();
        assert_eq!(run(&mut program, &ctx), 1);
        assert_eq!(run(&mut program, &ctx), 0);
        assert!(!pretty_print(&program).contains("cond_chk(cond_chk"));
    }
}
