//! Pass: expose UID comparisons through the `cc_*` detection calls.
//!
//! Every comparison whose operands include UID-class data is rewritten to
//! the corresponding checked-comparison system call of Table 2
//! (`uid == VARIANT_ROOT` becomes `cc_eq(uid, VARIANT_ROOT)`). Besides
//! letting the monitor observe the comparison, this keeps the variants'
//! instruction streams identical: if the ordering comparisons were evaluated
//! in user space, the reexpressed variant would need its operators reversed
//! (§3.5 of the paper).

use crate::inference::UidContext;
use crate::passes::rewrite_exprs;
use nvariant_vm::ast::{BinOp, Expr, Program};

/// The detection call corresponding to a comparison operator.
#[must_use]
pub fn detection_call_for(op: BinOp) -> Option<&'static str> {
    match op {
        BinOp::Eq => Some("cc_eq"),
        BinOp::Ne => Some("cc_neq"),
        BinOp::Lt => Some("cc_lt"),
        BinOp::Le => Some("cc_leq"),
        BinOp::Gt => Some("cc_gt"),
        BinOp::Ge => Some("cc_geq"),
        _ => None,
    }
}

/// Runs the pass, returning the number of comparisons rewritten.
pub fn run(program: &mut Program, ctx: &UidContext) -> usize {
    let mut count = 0;
    rewrite_exprs(program, |function, expr| match expr {
        Expr::Binary(op, lhs, rhs)
            if op.is_comparison()
                && (ctx.is_uid_expr(function, &lhs) || ctx.is_uid_expr(function, &rhs)) =>
        {
            let call = detection_call_for(op).expect("comparison operators map to cc_* calls");
            count += 1;
            Expr::Call(call.to_string(), vec![*lhs, *rhs])
        }
        other => other,
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::{parse_program, pretty_print};

    fn transform(src: &str) -> (String, usize) {
        let mut program = parse_program(src).unwrap();
        let ctx = UidContext::analyze(&program).unwrap();
        let count = run(&mut program, &ctx);
        (pretty_print(&program), count)
    }

    #[test]
    fn equality_against_constant_root() {
        let (text, count) = transform(
            r"
            var server_uid: uid_t;
            fn main() -> int {
                if (server_uid == 0) { return 1; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 1);
        assert!(text.contains("cc_eq(server_uid, 0)"));
    }

    #[test]
    fn all_six_operators_are_mapped() {
        let (text, count) = transform(
            r"
            fn classify(u: uid_t) -> int {
                if (u == 0) { return 1; }
                if (u != 0) { return 2; }
                if (u < 100) { return 3; }
                if (u <= 999) { return 4; }
                if (u > 1000) { return 5; }
                if (u >= 65534) { return 6; }
                return 0;
            }
            fn main() -> int { return classify(getuid()); }
            ",
        );
        assert_eq!(count, 6);
        for call in ["cc_eq", "cc_neq", "cc_lt", "cc_leq", "cc_gt", "cc_geq"] {
            assert!(text.contains(call), "missing {call} in {text}");
        }
    }

    #[test]
    fn uid_to_uid_comparisons_are_rewritten() {
        let (text, count) = transform(
            r"
            fn same_owner(a: uid_t, b: uid_t) -> int { return a == b; }
            fn main() -> int { return same_owner(getuid(), geteuid()); }
            ",
        );
        assert_eq!(count, 1);
        assert!(text.contains("cc_eq(a, b)"));
    }

    #[test]
    fn plain_integer_comparisons_are_untouched() {
        let (text, count) = transform(
            r"
            fn main() -> int {
                var n: int = 5;
                if (n == 5) { return 1; }
                if (n < 10) { return 2; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 0);
        assert!(!text.contains("cc_"));
    }

    #[test]
    fn detection_call_mapping_is_total_over_comparisons() {
        assert_eq!(detection_call_for(BinOp::Eq), Some("cc_eq"));
        assert_eq!(detection_call_for(BinOp::Ge), Some("cc_geq"));
        assert_eq!(detection_call_for(BinOp::Add), None);
        assert_eq!(detection_call_for(BinOp::LogAnd), None);
    }
}
