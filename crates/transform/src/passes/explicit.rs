//! Pass: make implicit UID constants explicit.
//!
//! The paper's example (§3.3): `if (!getuid())` contains an implied
//! comparison to the constant 0; it is rewritten to `if (getuid() == 0)` so
//! that the constant exists in the source and can then be re-expressed.
//! Similarly a bare UID value used as a truth value (`if (uid) …`) implies a
//! comparison with 0 and becomes `if (uid != 0)`.

use crate::inference::UidContext;
use crate::passes::{rewrite_conditions, rewrite_exprs};
use nvariant_vm::ast::{BinOp, Expr, Program, UnOp};

/// Runs the pass, returning the number of implicit constants made explicit.
pub fn run(program: &mut Program, ctx: &UidContext) -> usize {
    let mut count = 0;

    // `!uid_expr`  →  `uid_expr == 0`, wherever it appears.
    rewrite_exprs(program, |function, expr| match expr {
        Expr::Unary(UnOp::Not, inner) if ctx.is_uid_expr(function, &inner) => {
            count += 1;
            Expr::Binary(BinOp::Eq, inner, Box::new(Expr::IntLit(0)))
        }
        other => other,
    });

    // A bare UID value used directly as an `if`/`while` condition
    // →  `uid_expr != 0`.
    rewrite_conditions(program, |function, cond| {
        let is_bare_uid =
            matches!(&cond, Expr::Ident(_) | Expr::Call(_, _)) && ctx.is_uid_expr(function, &cond);
        if is_bare_uid {
            count += 1;
            Expr::Binary(BinOp::Ne, Box::new(cond), Box::new(Expr::IntLit(0)))
        } else {
            cond
        }
    });

    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvariant_vm::{parse_program, pretty_print};

    fn transform(src: &str) -> (String, usize) {
        let mut program = parse_program(src).unwrap();
        let ctx = UidContext::analyze(&program).unwrap();
        let count = run(&mut program, &ctx);
        (pretty_print(&program), count)
    }

    #[test]
    fn negated_uid_call_becomes_equality() {
        let (text, count) =
            transform("fn main() -> int { if (!getuid()) { return 1; } return 0; }");
        assert_eq!(count, 1);
        assert!(text.contains("(getuid() == 0)"));
        assert!(!text.contains("!getuid"));
    }

    #[test]
    fn bare_uid_condition_becomes_inequality() {
        let (text, count) = transform(
            r"
            var server_uid: uid_t;
            fn main() -> int {
                if (server_uid) { return 1; }
                while (getuid()) { return 2; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 2);
        assert!(text.contains("(server_uid != 0)"));
        assert!(text.contains("(getuid() != 0)"));
    }

    #[test]
    fn non_uid_expressions_are_untouched() {
        let (text, count) = transform(
            r"
            fn main() -> int {
                var n: int = 3;
                if (!n) { return 1; }
                if (n) { return 2; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 0);
        assert!(text.contains("!n"));
        assert!(text.contains("if (n)"));
    }

    #[test]
    fn nested_negations_inside_larger_conditions() {
        let (text, count) = transform(
            r"
            var server_uid: uid_t;
            fn main() -> int {
                if (!server_uid && 1) { return 1; }
                return 0;
            }
            ",
        );
        assert_eq!(count, 1);
        assert!(text.contains("(server_uid == 0)"));
    }
}
