//! Per-category change counts for the UID transformation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::Add;

/// The number of source changes made by each transformation pass — the
/// analogue of the paper's Section 4 breakdown of the 73 changes made to
/// Apache (15 reexpressed constants, 16 single-value exposures, 22
/// comparison exposures, 20 conditional checks).
///
/// # Example
///
/// ```
/// use nvariant_transform::TransformStats;
///
/// let stats = TransformStats {
///     uid_constants_reexpressed: 15,
///     implicit_constants_made_explicit: 3,
///     single_value_exposures: 16,
///     comparison_exposures: 22,
///     conditional_checks: 20,
///     log_sinks_sanitized: 1,
/// };
/// assert_eq!(stats.total(), 77);
/// assert_eq!(stats.paper_change_total(), 73);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformStats {
    /// Constant UID values rewritten with the reexpression function
    /// ("15 of the changes involved applying the reexpression function to
    /// constant UID values").
    pub uid_constants_reexpressed: usize,
    /// Implicit comparisons to a UID constant made explicit
    /// (`if (!getuid())` → `if (getuid() == 0)`).
    pub implicit_constants_made_explicit: usize,
    /// `uid_value` detection calls inserted to expose single UID uses
    /// ("16 changes to introduce the new system calls to expose single UID
    /// value usages").
    pub single_value_exposures: usize,
    /// UID comparisons rewritten to `cc_*` detection calls ("22 changes to
    /// expose conditional statements that compared UID values").
    pub comparison_exposures: usize,
    /// `cond_chk` detection calls inserted around UID-influenced
    /// conditionals ("20 changes to check conditional statements").
    pub conditional_checks: usize,
    /// Log/format sinks from which UID values were removed (the Apache error
    /// log workaround described in §4).
    pub log_sinks_sanitized: usize,
}

impl TransformStats {
    /// Total number of source changes across all categories.
    #[must_use]
    pub fn total(&self) -> usize {
        self.uid_constants_reexpressed
            + self.implicit_constants_made_explicit
            + self.single_value_exposures
            + self.comparison_exposures
            + self.conditional_checks
            + self.log_sinks_sanitized
    }

    /// Total over the four categories the paper's "73 changes" figure counts
    /// (constants, single-value exposures, comparison exposures, conditional
    /// checks).
    #[must_use]
    pub fn paper_change_total(&self) -> usize {
        self.uid_constants_reexpressed
            + self.single_value_exposures
            + self.comparison_exposures
            + self.conditional_checks
    }

    /// Renders the statistics as aligned report lines.
    #[must_use]
    pub fn report_lines(&self) -> Vec<String> {
        vec![
            format!(
                "UID constants re-expressed ............ {:>4}",
                self.uid_constants_reexpressed
            ),
            format!(
                "Implicit constants made explicit ...... {:>4}",
                self.implicit_constants_made_explicit
            ),
            format!(
                "Single UID value exposures (uid_value)  {:>4}",
                self.single_value_exposures
            ),
            format!(
                "UID comparison exposures (cc_*) ....... {:>4}",
                self.comparison_exposures
            ),
            format!(
                "Conditional checks (cond_chk) ......... {:>4}",
                self.conditional_checks
            ),
            format!(
                "Log sinks sanitized .................... {:>4}",
                self.log_sinks_sanitized
            ),
            format!(
                "Total changes .......................... {:>4}",
                self.total()
            ),
        ]
    }
}

impl Add for TransformStats {
    type Output = TransformStats;

    fn add(self, other: TransformStats) -> TransformStats {
        TransformStats {
            uid_constants_reexpressed: self.uid_constants_reexpressed
                + other.uid_constants_reexpressed,
            implicit_constants_made_explicit: self.implicit_constants_made_explicit
                + other.implicit_constants_made_explicit,
            single_value_exposures: self.single_value_exposures + other.single_value_exposures,
            comparison_exposures: self.comparison_exposures + other.comparison_exposures,
            conditional_checks: self.conditional_checks + other.conditional_checks,
            log_sinks_sanitized: self.log_sinks_sanitized + other.log_sinks_sanitized,
        }
    }
}

impl fmt::Display for TransformStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in self.report_lines() {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let stats = TransformStats {
            uid_constants_reexpressed: 1,
            implicit_constants_made_explicit: 2,
            single_value_exposures: 3,
            comparison_exposures: 4,
            conditional_checks: 5,
            log_sinks_sanitized: 6,
        };
        assert_eq!(stats.total(), 21);
        assert_eq!(stats.paper_change_total(), 13);
        assert_eq!(TransformStats::default().total(), 0);
    }

    #[test]
    fn addition_sums_fields() {
        let a = TransformStats {
            uid_constants_reexpressed: 1,
            comparison_exposures: 2,
            ..TransformStats::default()
        };
        let b = TransformStats {
            uid_constants_reexpressed: 10,
            conditional_checks: 7,
            ..TransformStats::default()
        };
        let sum = a + b;
        assert_eq!(sum.uid_constants_reexpressed, 11);
        assert_eq!(sum.comparison_exposures, 2);
        assert_eq!(sum.conditional_checks, 7);
    }

    #[test]
    fn display_contains_every_category() {
        let text = TransformStats::default().to_string();
        assert!(text.contains("uid_value"));
        assert!(text.contains("cc_*"));
        assert!(text.contains("cond_chk"));
        assert!(text.contains("Total changes"));
        assert_eq!(TransformStats::default().report_lines().len(), 7);
    }
}
