#!/bin/sh
# fake_remote.sh — hermetic stand-in for `ssh <host>`: runs a command in a
# per-host scratch directory with injectable latency, crashes and dropped
# shard files, so the fleet e2e tests exercise CommandTransport end to end
# (spawn through the prefix, shard files written host-side, retrieval via
# `... cat FILE`) without any network.
#
#   fake_remote.sh <host> <command> [args...]
#
# Environment:
#   FAKE_REMOTE_ROOT        scratch root; each host gets $root/<host> as
#                           its working directory (default:
#                           ${TMPDIR:-/tmp}/fake-remote — set it explicitly
#                           in tests to stay isolated between runs)
#   FAKE_REMOTE_LATENCY_MS  sleep this many milliseconds before running
#                           the command (simulated link latency)
#   FAKE_REMOTE_CRASH_HOSTS comma-separated hosts that fail every command
#                           (simulated dead host; exits 13)
#   FAKE_REMOTE_DROP_HOSTS  comma-separated hosts that run commands but
#                           lose any shard file they produced (simulated
#                           storage loss: the later `cat` retrieval fails)
set -eu

host="$1"
shift

root="${FAKE_REMOTE_ROOT:-${TMPDIR:-/tmp}/fake-remote}"
mkdir -p "$root/$host"
cd "$root/$host"

case ",${FAKE_REMOTE_CRASH_HOSTS:-}," in
  *",$host,"*)
    echo "fake_remote: host $host is down" >&2
    exit 13
    ;;
esac

if [ -n "${FAKE_REMOTE_LATENCY_MS:-}" ]; then
  sleep "$(awk "BEGIN { print ${FAKE_REMOTE_LATENCY_MS} / 1000 }")"
fi

case ",${FAKE_REMOTE_DROP_HOSTS:-}," in
  *",$host,"*)
    # Run the command normally, then lose its shard files. No exec here:
    # the cleanup must run after the worker exits.
    "$@"
    rm -f shard-*.txt
    exit 0
    ;;
esac

# exec so coordinator-side kills reach the worker itself, exactly as a
# killed ssh session would take the remote command down with it.
exec "$@"
