//! Repo-level pin of the streaming result path: the million-cell synthetic
//! surface matches its committed golden fixture (the same fixture the CI
//! `streaming-scale` job asserts under an address-space cap), and the
//! surface is byte-identical at any worker count.

use nvariant_campaign::SyntheticSweep;

/// The replicate count that makes the synthetic matrix cross 10^6 cells
/// (5 × 4 × 3 × 16667 = 1,000,020) — the scale the CI memory experiment
/// runs at, kept identical here so the fixture covers both.
const MILLION_CELL_REPLICATES: usize = 16667;

#[test]
fn million_cell_surface_matches_the_committed_fixture() {
    let sweep = SyntheticSweep::new(MILLION_CELL_REPLICATES);
    assert!(
        sweep.cell_count() >= 1_000_000,
        "sweep must cross 10^6 cells"
    );
    let aggregator = sweep.run_streamed(4);
    let golden = include_str!("fixtures/synthetic_surface_1m.txt");
    assert_eq!(
        aggregator.render_surface(),
        golden,
        "surface drifted from tests/fixtures/synthetic_surface_1m.txt; \
         regenerate with: campaign_report --synthetic --replicate-factor 16667 \
         --surface-out tests/fixtures/synthetic_surface_1m.txt"
    );
}

#[test]
fn surface_bytes_are_worker_count_invariant() {
    let sweep = SyntheticSweep::new(37);
    let serial = sweep.run_streamed(1);
    let parallel = sweep.run_streamed(8);
    assert_eq!(serial.render_surface(), parallel.render_surface());
}
