//! Seed-derivation and sharding guarantees of the experiment-plan engine.
//!
//! `cell_seed` is the root of the determinism story: every cell's behaviour
//! is a function of its seed, so two distinct matrix coordinates colliding
//! would silently run identical workloads where the plan promises
//! independent replicates. These tests pin that property over the exact
//! matrices the report binaries sweep, and over randomly drawn bases and
//! matrix shapes.

use nvariant::DeploymentConfig;
use nvariant_apps::campaigns::{
    full_matrix_campaign, security_sweep_configs, security_sweep_worlds,
};
use nvariant_campaign::{cell_seed, CampaignPlan, CellSpec};
use proptest::prelude::*;
use std::collections::HashSet;

fn assert_all_seeds_distinct(cells: &[CellSpec], context: &str) {
    let mut seen: HashSet<u64> = HashSet::with_capacity(cells.len());
    for cell in cells {
        assert!(
            seen.insert(cell.seed),
            "{context}: seed collision at {:?}",
            cell.coordinates()
        );
    }
}

#[test]
fn full_matrix_report_plan_has_collision_free_seeds() {
    // The exact plan `campaign_report` (full mode) runs: 5 configurations ×
    // 4 worlds × (benign + 3 attacks) × 2 replicates.
    let plan = full_matrix_campaign(&security_sweep_configs(), &security_sweep_worlds(), 24, 2);
    let cells = plan.cells();
    assert_eq!(cells.len(), 5 * 4 * 4 * 2);
    assert_all_seeds_distinct(&cells, "campaign_report full matrix");
}

#[test]
fn attack_matrix_and_webbench_plans_have_collision_free_seeds() {
    // The attack matrix: every sweep configuration × 3 attacks.
    let attack_cells = nvariant_apps::attack_campaign(&security_sweep_configs()).cells();
    assert_eq!(attack_cells.len(), 5 * 3);
    assert_all_seeds_distinct(&attack_cells, "attack matrix");

    // The Table 3 matrix: the paper's 4 configurations × 2 load levels
    // (scenario-per-load, as `WebBench::measure_matrix` declares it).
    let webbench = nvariant_apps::campaigns::httpd_campaign(
        "webbench",
        &DeploymentConfig::paper_configurations(),
    )
    .scenario(nvariant_campaign::Scenario::fixed_requests(
        "load-1x36",
        vec![],
    ))
    .scenario(nvariant_campaign::Scenario::fixed_requests(
        "load-15x6",
        vec![],
    ));
    let cells = webbench.cells();
    assert_eq!(cells.len(), 4 * 2);
    assert_all_seeds_distinct(&cells, "webbench matrix");
}

#[test]
fn seeds_are_stable_across_replicate_and_axis_growth() {
    // Growing the matrix along a later axis must not re-seed earlier cells:
    // coordinates, not enumeration order, drive the derivation. This is
    // what lets a coordinator extend a sweep without invalidating cached
    // cell results.
    let config = nvariant_apps::compiled_httpd_system(&DeploymentConfig::Unmodified);
    let small = CampaignPlan::new("grow")
        .config(config.clone())
        .scenario(nvariant_campaign::Scenario::fixed_requests("a", vec![]))
        .replicates(2);
    let large = small
        .clone()
        .scenario(nvariant_campaign::Scenario::fixed_requests("b", vec![]))
        .replicates(3);
    let small_cells = small.cells();
    let large_cells = large.cells();
    for cell in &small_cells {
        let twin = large_cells
            .iter()
            .find(|c| c.coordinates() == cell.coordinates())
            .expect("small matrix embeds in the large one");
        assert_eq!(twin.seed, cell.seed, "{:?}", cell.coordinates());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Over random base seeds and matrix shapes, every coordinate in the
    /// matrix draws a distinct seed (an exhaustive check per drawn shape).
    #[test]
    fn cell_seeds_never_collide_within_a_matrix(
        base in any::<u64>(),
        configs in 1usize..7,
        worlds in 1usize..5,
        scenarios in 1usize..7,
        replicates in 1usize..5,
    ) {
        let mut seen: HashSet<u64> =
            HashSet::with_capacity(configs * worlds * scenarios * replicates);
        for c in 0..configs {
            for w in 0..worlds {
                for s in 0..scenarios {
                    for r in 0..replicates {
                        let seed = cell_seed(base, c, w, s, r);
                        prop_assert!(
                            seen.insert(seed),
                            "collision at ({c}, {w}, {s}, {r}) under base {base:#x}"
                        );
                    }
                }
            }
        }
    }

    /// Transposed coordinates draw different seeds: the axes are not
    /// interchangeable, so a (config, world) swap cannot silently reuse a
    /// cell's workload.
    #[test]
    fn cell_seed_axes_are_position_sensitive(
        base in any::<u64>(),
        a in 0usize..32,
        b in 0usize..32,
    ) {
        if a != b {
            prop_assert_ne!(cell_seed(base, a, b, 0, 0), cell_seed(base, b, a, 0, 0));
            prop_assert_ne!(cell_seed(base, 0, a, b, 0), cell_seed(base, 0, b, a, 0));
            prop_assert_ne!(cell_seed(base, 0, 0, a, b), cell_seed(base, 0, 0, b, a));
        }
    }
}
