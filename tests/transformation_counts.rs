//! Integration test of the Section 4 reproduction: the automated UID
//! transformation of the case-study server touches every change category
//! the paper reports for Apache, variant 0's text is unchanged, and the
//! transformed variants still build and behave.

use nvariant_apps::httpd_source;
use nvariant_diversity::UidTransform;
use nvariant_transform::{TransformOptions, UidTransformer};
use nvariant_vm::{compile_program, parse_with_stdlib, pretty_print};

#[test]
fn every_paper_change_category_is_exercised_by_the_mini_apache() {
    let program = parse_with_stdlib(httpd_source()).unwrap();
    let transformer = UidTransformer::default();
    let variant = transformer
        .transform_for_variant(&program, &UidTransform::paper_mask())
        .unwrap();
    let stats = variant.stats;
    assert!(stats.uid_constants_reexpressed > 0, "{stats}");
    assert!(stats.single_value_exposures > 0, "{stats}");
    assert!(stats.comparison_exposures > 0, "{stats}");
    assert!(stats.conditional_checks > 0, "{stats}");
    assert!(stats.log_sinks_sanitized > 0, "{stats}");
    assert!(stats.paper_change_total() >= 12, "{stats}");
}

#[test]
fn variant_zero_keeps_the_original_constants_and_variant_one_differs_only_in_them() {
    let program = parse_with_stdlib(httpd_source()).unwrap();
    let transformer = UidTransformer::default();
    let variants = transformer
        .transform_for_variants(
            &program,
            &[UidTransform::Identity, UidTransform::paper_mask()],
        )
        .unwrap();
    let text0 = pretty_print(&variants[0].program);
    let text1 = pretty_print(&variants[1].program);
    // Identical structure: same number of lines, same detection calls.
    assert_eq!(text0.lines().count(), text1.lines().count());
    assert_eq!(text0.matches("cc_").count(), text1.matches("cc_").count());
    assert_eq!(
        text0.matches("uid_value").count(),
        text1.matches("uid_value").count()
    );
    // Different constants: variant 1 carries the re-expressed root value.
    assert!(text1.contains("0x7fffffff"));
    assert!(!text0.contains("0x7fffffff"));
    // Both compile.
    compile_program(&variants[0].program).unwrap();
    compile_program(&variants[1].program).unwrap();
}

#[test]
fn disabling_detection_calls_reduces_the_change_count() {
    let program = parse_with_stdlib(httpd_source()).unwrap();
    let full = UidTransformer::default()
        .transform_for_variant(&program, &UidTransform::paper_mask())
        .unwrap();
    let minimal = UidTransformer::new(TransformOptions {
        insert_detection_calls: false,
        ..TransformOptions::default()
    })
    .transform_for_variant(&program, &UidTransform::paper_mask())
    .unwrap();
    assert!(minimal.stats.paper_change_total() < full.stats.paper_change_total());
    assert_eq!(minimal.stats.comparison_exposures, 0);
    assert_eq!(minimal.stats.conditional_checks, 0);
    assert!(minimal.stats.uid_constants_reexpressed > 0);
}

#[test]
fn the_transformation_is_deterministic() {
    let program = parse_with_stdlib(httpd_source()).unwrap();
    let transformer = UidTransformer::default();
    let a = transformer
        .transform_for_variant(&program, &UidTransform::paper_mask())
        .unwrap();
    let b = transformer
        .transform_for_variant(&program, &UidTransform::paper_mask())
        .unwrap();
    assert_eq!(a.stats, b.stats);
    assert_eq!(pretty_print(&a.program), pretty_print(&b.program));
}
