//! The shard interchange codec against hostile input: a coordinator parses
//! shard files written by workers it does not trust to have survived —
//! truncated writes, corrupted bytes, duplicated lines. `from_shard_text`
//! must always return a precise line-numbered error, and must never panic.

use nvariant::DeploymentConfig;
use nvariant_apps::campaigns::full_matrix_campaign;
use nvariant_campaign::{CampaignReport, CheckSummary};
use proptest::prelude::*;
use std::sync::OnceLock;

/// A rich, real shard text: attack cells with alarms, judged verdicts and
/// binary exchange payloads, benign cells with per-seed request sequences.
/// None of the quick matrix's cells terminate in a single-process fault,
/// so one faulted cell is grafted in to cover that optional line too, and
/// a model-checking summary covers the v3 `checked` line.
fn sample_text() -> &'static str {
    static TEXT: OnceLock<String> = OnceLock::new();
    TEXT.get_or_init(|| {
        let mut report = full_matrix_campaign(&[DeploymentConfig::TwoVariantUid], &[], 3, 1).run(2);
        report.cells[0].checked = Some(CheckSummary {
            property: "P1".to_string(),
            status: "pass".to_string(),
            states: 4242,
            depth: 24,
        });
        let mut faulted = report.cells[0].clone();
        faulted.spec.replicate += 1;
        faulted.outcome.exit_status = None;
        faulted.outcome.fault = Some("segfault: read of unmapped 0x7fff0000".to_string());
        report.cells.push(faulted);
        report.to_shard_text()
    })
}

#[test]
fn sample_covers_the_grammar() {
    // The mutation tests below are only as good as the sample they mutate:
    // make sure every optional construct of the format appears.
    let text = sample_text();
    for field in [
        "plan_hash ",
        "shape ",
        "alarm ",
        "fault ",
        "observed ",
        "expected ",
        "checked ",
        "exchange ",
        "endcell",
    ] {
        assert!(text.contains(field), "sample lacks {field:?} lines");
    }
    let parsed = CampaignReport::from_shard_text(text).unwrap();
    assert_eq!(parsed.to_shard_text(), text);
}

#[test]
fn every_line_truncation_is_a_clean_lined_error() {
    let text = sample_text();
    let lines: Vec<&str> = text.lines().collect();
    for keep in 0..lines.len() {
        let truncated = lines[..keep].iter().fold(String::new(), |mut acc, l| {
            acc.push_str(l);
            acc.push('\n');
            acc
        });
        let err = CampaignReport::from_shard_text(&truncated)
            .expect_err("a proper prefix can never be a complete shard file");
        assert!(
            err.line <= keep + 1,
            "kept {keep} lines, error names line {} ({err})",
            err.line
        );
    }
}

#[test]
fn duplicated_lines_are_rejected_with_the_offending_line() {
    let text = sample_text();
    let lines: Vec<&str> = text.lines().collect();
    // Duplicating any single line must fail (the grammar has no repeatable
    // line except `exchange`, whose duplication changes the cell but still
    // parses) — and the reported line must be at or after the duplicate.
    for (index, line) in lines.iter().enumerate() {
        if line.starts_with("exchange ") {
            continue;
        }
        let mut mutated: Vec<&str> = lines.clone();
        mutated.insert(index + 1, line);
        let joined = mutated.join("\n");
        if let Err(err) = CampaignReport::from_shard_text(&joined) {
            assert!(
                err.line <= mutated.len() + 1,
                "line {index} duplicated, error line {} out of range",
                err.line
            );
        } else {
            panic!("duplicating line {index} ({line:?}) parsed successfully");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Byte-level fuzz over the shard text: overwrite, insert, delete,
    /// truncate or line-duplicate at a random position. The parser must
    /// return (never panic), and anything it accepts must itself re-encode
    /// and re-parse — mutations can land in quoted labels or hex payloads
    /// and still yield a structurally valid file.
    #[test]
    fn mutated_shard_texts_never_panic(
        position in any::<u64>(),
        kind in 0usize..5,
        value in any::<u8>(),
    ) {
        let mut bytes = sample_text().as_bytes().to_vec();
        let at = (position as usize) % bytes.len();
        match kind {
            0 => bytes[at] = value,
            1 => {
                bytes.remove(at);
            }
            2 => bytes.insert(at, value),
            3 => bytes.truncate(at),
            _ => {
                // Duplicate the line containing `at`.
                let start = bytes[..at].iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
                let end = bytes[at..]
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(bytes.len(), |p| at + p + 1);
                let line: Vec<u8> = bytes[start..end].to_vec();
                bytes.splice(start..start, line);
            }
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        if let Ok(report) = CampaignReport::from_shard_text(&mutated) {
            let reparsed = CampaignReport::from_shard_text(&report.to_shard_text());
            prop_assert!(reparsed.is_ok(), "accepted text failed to round-trip");
        }
    }
}
