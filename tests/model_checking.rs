//! Repo-level regressions for the bounded model checker wired through the
//! application layer: the weakened-monitor counterexample is deterministic
//! down to the byte, and greedy minimization preserves the violation under
//! randomized perturbation of the trace it starts from.

use nvariant::DeploymentConfig;
use nvariant_apps::weakened_httpd_check_target;
use nvariant_check::{
    minimize, replay, Action, BoundedChecker, CheckRequest, CheckStatus, CheckTarget, Checker,
    Property,
};
use nvariant_simos::WorldTemplate;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Matches the CLI's `--quick` bound; deep enough for the weakened
/// two-variant UID deployment to reach its credential call.
const DEPTH: usize = 32;

fn weakened_target() -> CheckTarget {
    weakened_httpd_check_target(&DeploymentConfig::TwoVariantUid, WorldTemplate::standard())
}

/// The seeded regression's counterexample, computed once: the rendered form
/// plus the minimized action trace it was rendered from.
fn baseline() -> &'static (String, Vec<Action>) {
    static BASELINE: OnceLock<(String, Vec<Action>)> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let report = BoundedChecker.check(
            &weakened_target(),
            &CheckRequest::new(Property::UidIntegrity, DEPTH),
        );
        assert_eq!(report.status, CheckStatus::Fail);
        let counterexample = report
            .counterexample
            .expect("a failed check carries a counterexample");
        let actions = counterexample.steps.iter().map(|s| s.action).collect();
        (counterexample.render(), actions)
    })
}

#[test]
fn weakened_counterexample_renders_byte_identically_across_independent_checks() {
    let (first_render, _) = baseline();
    // A completely independent run: fresh target instantiation, fresh
    // exploration. Bounded checking is deterministic end to end, so the
    // rendered counterexample must match byte for byte.
    let report = BoundedChecker.check(
        &weakened_target(),
        &CheckRequest::new(Property::UidIntegrity, DEPTH),
    );
    let counterexample = report
        .counterexample
        .expect("the weakened monitor misses the corrupted credential call");
    assert_eq!(&counterexample.render(), first_render);
}

#[test]
fn weakened_counterexample_replays_to_the_same_violation() {
    let (render, actions) = baseline();
    let replayed = replay(&weakened_target(), Property::UidIntegrity, actions);
    let violation = replayed
        .violation
        .expect("the minimized trace replays to a violation");
    assert!(
        render.contains(&violation),
        "rendered counterexample should carry the replayed violation:\n{render}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Minimization soundness: take the known violating trace, pad it with
    /// arbitrary extra annotations (a receive cap and a redundant corrupt
    /// move at random positions), and whenever the perturbed trace still
    /// violates, its minimization must (a) still replay to a violation and
    /// (b) carry no more non-default annotations than what it started from.
    #[test]
    fn prop_minimized_traces_still_fail_when_replayed(
        cap_seed in any::<u64>(),
        corrupt_seed in any::<u64>(),
    ) {
        let target = weakened_target();
        let (_, base_actions) = baseline();
        let mut perturbed = base_actions.clone();
        let len = perturbed.len();
        let cap_at = (cap_seed as usize) % len;
        perturbed[cap_at].recv_cap = Some(1 + (cap_seed >> 32) as usize % 4);
        let corrupt_at = (corrupt_seed as usize) % len;
        perturbed[corrupt_at].corrupt = true;
        let perturbed_replay = replay(&target, Property::UidIntegrity, &perturbed);
        // When the perturbation changes the schedule enough to defuse the
        // attack (or alarm early), minimize's precondition does not hold and
        // there is nothing to shrink in this case.
        if perturbed_replay.violation.is_some() {
            let (minimized, min_replay) = minimize(&target, Property::UidIntegrity, &perturbed);
            prop_assert!(min_replay.violation.is_some());
            // Replaying the minimized actions independently reproduces it.
            let independent = replay(&target, Property::UidIntegrity, &minimized);
            prop_assert_eq!(independent.violation, min_replay.violation);
            let annotations =
                |actions: &[Action]| actions.iter().filter(|a| !a.is_default()).count();
            prop_assert!(annotations(&minimized) <= annotations(&perturbed));
        }
    }
}
