//! Integration test: the security evaluation matrix.
//!
//! Every attack class is launched against every deployment configuration
//! and the observed result must match what the paper's arguments predict —
//! including the negative results (class-specificity), which are as
//! important to the paper's story as the detections.

use nvariant::DeploymentConfig;
use nvariant_apps::attacks::{attack_matrix, run_attack, Attack, AttackClass, AttackResult};

fn matrix_configs() -> Vec<DeploymentConfig> {
    vec![
        DeploymentConfig::Unmodified,
        DeploymentConfig::TransformedSingle,
        DeploymentConfig::TwoVariantAddress,
        DeploymentConfig::TwoVariantUid,
        DeploymentConfig::composed_uid_and_address(),
    ]
}

#[test]
fn every_attack_outcome_matches_the_papers_prediction() {
    let outcomes = attack_matrix(&matrix_configs());
    assert_eq!(outcomes.len(), 3 * 5);
    for outcome in &outcomes {
        assert!(
            outcome.matches_expectation(),
            "{} vs {}: observed {:?}, predicted {:?} (alarm: {:?})",
            outcome.attack,
            outcome.config_label,
            outcome.result,
            outcome.expected,
            outcome.alarm
        );
    }
}

#[test]
fn uid_corruption_is_guaranteed_detected_by_the_uid_variation() {
    for attack in Attack::all() {
        if matches!(
            attack.class,
            AttackClass::UidCorruptionRelative | AttackClass::UidCorruptionAbsolute
        ) {
            let outcome = run_attack(&DeploymentConfig::TwoVariantUid, &attack);
            assert_eq!(outcome.result, AttackResult::Detected, "{outcome:?}");
            assert!(outcome.alarm.is_some());
        }
    }
}

#[test]
fn the_composed_variation_covers_both_attack_classes() {
    let composed = DeploymentConfig::composed_uid_and_address();
    for attack in Attack::all() {
        let outcome = run_attack(&composed, &attack);
        assert_eq!(
            outcome.result,
            AttackResult::Detected,
            "composition should detect {}: {outcome:?}",
            attack.name
        );
    }
}

#[test]
fn detection_alarms_identify_the_uid_data_class() {
    let attack = &Attack::all()[0];
    let outcome = run_attack(&DeploymentConfig::TwoVariantUid, attack);
    let alarm = outcome.alarm.expect("attack must be detected");
    // The divergence is observed at a UID use: either a detection call or a
    // UID-carrying system call argument.
    assert!(
        alarm.contains("seteuid") || alarm.contains("uid_value") || alarm.contains("cc_"),
        "alarm should implicate a UID use: {alarm}"
    );
}

#[test]
fn single_process_configurations_never_raise_alarms() {
    for attack in Attack::all() {
        for config in [
            DeploymentConfig::Unmodified,
            DeploymentConfig::TransformedSingle,
        ] {
            let outcome = run_attack(&config, &attack);
            assert!(
                outcome.alarm.is_none(),
                "single-process deployments cannot detect: {outcome:?}"
            );
            assert_ne!(outcome.result, AttackResult::Detected);
        }
    }
}
