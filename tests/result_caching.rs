//! The result-cache determinism contract, end to end and in-process:
//! running the same plan twice against one cache directory produces
//! byte-identical canonical reports with the second run served entirely
//! from cache; flipping any plan axis or transform option changes the plan
//! hash and therefore never reuses the old entries; and the builder
//! fingerprint that keys the artifact store is stable and axis-sensitive,
//! mirroring `plan_hash_is_stable_and_axis_sensitive`.

use nvariant::store::{from_artifact_text, to_artifact_text};
use nvariant::{ArtifactStore, DeploymentConfig, NVariantSystemBuilder};
use nvariant_apps::campaigns::full_matrix_campaign;
use nvariant_apps::httpd_source;
use nvariant_campaign::{CampaignPlan, CampaignReport, Scenario};
use nvariant_simos::WorldBuilder;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("result-caching-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn two_config_plan() -> CampaignPlan {
    full_matrix_campaign(
        &[
            DeploymentConfig::Unmodified,
            DeploymentConfig::TwoVariantUid,
        ],
        &[],
        3,
        1,
    )
}

#[test]
fn warm_runs_are_byte_identical_and_fully_cached() {
    let cache = scratch("warm-identity");
    let plan = two_config_plan();
    let cached = plan.clone().with_cache_dir(&cache);
    let cells = plan.cells().len() as u64;

    // Cold: every cell misses, executes, and is persisted.
    let cold = cached.run(2);
    let cold_stats = cold.cache.expect("cached run reports stats");
    assert_eq!(cold_stats.hits, 0);
    assert_eq!(cold_stats.misses, cells);
    assert_eq!(cold_stats.invalidations, 0);

    // Warm: every cell is a file read, and the canonical serialization is
    // byte-identical — at any worker count.
    for workers in [1, 4] {
        let warm = cached.run(workers);
        let stats = warm.cache.expect("cached run reports stats");
        assert_eq!(stats.hits, cells, "workers = {workers}");
        assert_eq!(stats.misses, 0, "workers = {workers}");
        assert_eq!(warm.canonical_text(), cold.canonical_text());
    }

    // And caching never changed content: an uncached run agrees too.
    assert_eq!(plan.run(2).canonical_text(), cold.canonical_text());
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn sharded_and_whole_runs_share_one_cell_keyspace() {
    let cache = scratch("shard-keyspace");
    let plan = two_config_plan().with_cache_dir(&cache);

    // Run the plan as two cold shards (what two worker processes do)...
    let shard0 = plan.run_shard(0, 2, 2);
    let shard1 = plan.run_shard(1, 2, 2);
    assert_eq!(shard0.cache.unwrap().hits, 0);

    // ...then the whole plan: every cell is already there.
    let whole = plan.run(2);
    let stats = whole.cache.unwrap();
    assert_eq!(stats.hits, plan.cells().len() as u64);
    assert_eq!(stats.misses, 0);
    let merged = CampaignReport::merge([shard0, shard1]).expect("shards merge");
    assert_eq!(merged.canonical_text(), whole.canonical_text());

    // A coordinator can now assemble any shard purely from file reads.
    let warm_shard = plan
        .cached_shard_report(1, 2)
        .expect("fully cached shard is served warm");
    assert_eq!(
        warm_shard.canonical_text(),
        plan.run_shard(1, 2, 1).canonical_text()
    );
    // An uncached plan never serves warm shards.
    assert!(two_config_plan().cached_shard_report(0, 2).is_none());
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn flipping_any_plan_axis_leaves_old_entries_unused() {
    let cache = scratch("axis-invalidation");
    let base = two_config_plan().with_cache_dir(&cache);
    let base_cells = base.cells().len() as u64;
    let cold = base.run(2);
    assert_eq!(cold.cache.unwrap().misses, base_cells);

    // Each variation of the plan carries a different plan hash, so none of
    // its cells can hit the base plan's entries: every cell misses again.
    let variations: Vec<CampaignPlan> = vec![
        base.clone().seed(99),
        base.clone().replicates(2),
        base.clone()
            .world(nvariant_simos::WorldTemplate::alternate_accounts()),
        base.clone()
            .scenario(Scenario::fixed_requests("extra", vec![])),
    ];
    for (index, plan) in variations.into_iter().enumerate() {
        assert_ne!(plan.plan_hash(), base.plan_hash(), "variation {index}");
        let report = plan.run(2);
        let stats = report.cache.unwrap();
        assert_eq!(stats.hits, 0, "variation {index}: {stats:?}");
        assert_eq!(stats.misses, plan.cells().len() as u64, "variation {index}");
    }

    // Flipping a *transform option* reshapes the compiled artifact (its
    // transform counters enter the plan descriptor), so even an
    // identically-shaped matrix gets a fresh keyspace.
    let ablated = Arc::new(
        NVariantSystemBuilder::from_source(httpd_source())
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .initial_uid(nvariant_types::Uid::ROOT)
            .transform_options(nvariant_transform::TransformOptions {
                insert_detection_calls: false,
                ..Default::default()
            })
            .compile()
            .unwrap(),
    );
    let ablated_plan = full_matrix_campaign(&[DeploymentConfig::Unmodified], &[], 3, 1)
        .config(ablated)
        .with_cache_dir(&cache);
    assert_ne!(ablated_plan.plan_hash(), base.plan_hash());
    let report = ablated_plan.run(2);
    assert_eq!(report.cache.unwrap().hits, 0);

    // The base plan's entries are untouched throughout: still all hits.
    let warm = base.run(2);
    assert_eq!(warm.cache.unwrap().hits, base_cells);
    assert_eq!(warm.canonical_text(), cold.canonical_text());
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn corrupted_cell_entries_recompute_without_changing_bytes() {
    let cache = scratch("cell-corruption");
    let plan = two_config_plan().with_cache_dir(&cache);
    let cold = plan.run(2);

    // Corrupt one entry and truncate another.
    let cell_dir = cache
        .join("cells")
        .join(format!("{:016x}", plan.plan_hash()));
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&cell_dir)
        .expect("cell entries written")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), plan.cells().len());
    std::fs::write(&entries[0], "garbage").unwrap();
    let text = std::fs::read_to_string(&entries[1]).unwrap();
    std::fs::write(&entries[1], &text[..text.len() / 2]).unwrap();

    // The damaged cells recompute (invalidations, not crashes), the rest
    // hit, and the output is byte-identical.
    let recovered = plan.run(2);
    let stats = recovered.cache.unwrap();
    assert_eq!(stats.invalidations, 2, "{stats:?}");
    assert_eq!(stats.hits, plan.cells().len() as u64 - 2);
    assert_eq!(recovered.canonical_text(), cold.canonical_text());

    // And the recompute healed the entries: fully warm again.
    let healed = plan.run(2);
    assert_eq!(healed.cache.unwrap().hits, plan.cells().len() as u64);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn artifact_store_round_trips_the_httpd_across_stores() {
    let cache = scratch("artifact-httpd");
    let builder = || {
        NVariantSystemBuilder::from_source(httpd_source())
            .unwrap()
            .config(DeploymentConfig::TwoVariantUid)
            .initial_uid(nvariant_types::Uid::ROOT)
    };
    let cold_store = ArtifactStore::at(&cache);
    let compiled = cold_store.get_or_compile(builder()).unwrap();
    assert_eq!(cold_store.stats().misses, 1);

    // A second store over the same directory models a second process: the
    // artifact loads from disk, skipping recompilation, and behaves
    // identically — including the symbol addresses attack payloads read.
    let warm_store = ArtifactStore::at(&cache);
    let loaded = warm_store.get_or_compile(builder()).unwrap();
    assert_eq!(warm_store.stats().hits, 1);
    assert_eq!(warm_store.stats().misses, 0);
    assert_eq!(loaded.fingerprint(), compiled.fingerprint());
    assert_eq!(
        loaded.instantiate().global_addr("server_uid"),
        compiled.instantiate().global_addr("server_uid")
    );
    let a = compiled.instantiate().run();
    let b = loaded.instantiate().run();
    assert_eq!(a, b);

    // Corrupting the entry falls back to recompilation.
    let entry = warm_store.entry_path(compiled.fingerprint()).unwrap();
    let text = std::fs::read_to_string(&entry).unwrap();
    std::fs::write(&entry, &text[..text.len() / 3]).unwrap();
    let healed_store = ArtifactStore::at(&cache);
    let recompiled = healed_store.get_or_compile(builder()).unwrap();
    assert_eq!(healed_store.stats().invalidations, 1);
    assert_eq!(recompiled.instantiate().run(), a);
    // ...and overwrites the bad entry with a good one.
    assert_eq!(std::fs::read_to_string(&entry).unwrap(), text);
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn concurrent_stores_on_one_directory_never_produce_torn_artifacts() {
    let cache = scratch("artifact-concurrency");
    let builder = |config: DeploymentConfig| {
        NVariantSystemBuilder::from_source(httpd_source())
            .unwrap()
            .config(config)
            .initial_uid(nvariant_types::Uid::ROOT)
    };
    // Several "processes" (independent stores) race to populate the same
    // key while readers keep loading it. Atomic write-then-rename means a
    // reader sees either nothing (miss → compiles) or a complete entry —
    // an invalidation would mean a torn write leaked through.
    std::thread::scope(|scope| {
        for _ in 0..3 {
            scope.spawn(|| {
                let store = ArtifactStore::at(&cache);
                for _ in 0..3 {
                    let entry = store
                        .entry_path(builder(DeploymentConfig::TwoVariantUid).fingerprint())
                        .unwrap();
                    let _ = std::fs::remove_file(&entry);
                    store
                        .get_or_compile(builder(DeploymentConfig::TwoVariantUid))
                        .unwrap();
                }
            });
        }
        scope.spawn(|| {
            let baseline = builder(DeploymentConfig::TwoVariantUid)
                .compile()
                .unwrap()
                .instantiate()
                .run();
            for _ in 0..6 {
                let store = ArtifactStore::at(&cache);
                let loaded = store
                    .get_or_compile(builder(DeploymentConfig::TwoVariantUid))
                    .unwrap();
                assert_eq!(loaded.instantiate().run(), baseline);
                assert_eq!(store.stats().invalidations, 0, "torn artifact observed");
            }
        });
    });
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn artifact_codec_is_a_fixed_point_on_the_httpd() {
    // The full mini-Apache — the largest real program in the workspace —
    // survives the codec byte-for-byte stably under every configuration the
    // sweeps use.
    let world = WorldBuilder::standard().build();
    for config in nvariant_apps::campaigns::security_sweep_configs() {
        let compiled = NVariantSystemBuilder::from_source(httpd_source())
            .unwrap()
            .config(config.clone())
            .initial_uid(nvariant_types::Uid::ROOT)
            .compile()
            .unwrap();
        let text = to_artifact_text(&compiled).expect("sweep configs serialize");
        let loaded = from_artifact_text(&text, &world).expect("artifact parses");
        assert_eq!(to_artifact_text(&loaded).unwrap(), text, "{config}");
        assert_eq!(loaded.instantiate().run(), compiled.instantiate().run());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The artifact fingerprint mirrors `plan_hash_is_stable_and_axis_sensitive`:
    /// stable for identical builder inputs, perturbed by every input axis
    /// (source, configuration shape, UID mask, variant count, transform
    /// flag, limits) — the property the cache key needs so stale reuse and
    /// spurious recompiles are both impossible.
    #[test]
    fn fingerprint_is_stable_and_axis_sensitive(
        mask in any::<u32>(),
        variants in 2usize..5,
        transform in any::<bool>(),
        max_syscalls in 1u64..1_000_000,
    ) {
        let source = "fn main() -> int { var uid: uid_t; uid = getuid(); return 0; }";
        let build = |mask: u32, variants: usize, transform: bool, max_syscalls: u64| {
            NVariantSystemBuilder::from_source(source)
                .unwrap()
                .config(DeploymentConfig::Custom {
                    variation: nvariant_diversity::Variation::UidDiversity { mask },
                    variants,
                    transform_uids: transform,
                })
                .run_limits(nvariant_vm::RunLimits {
                    max_steps_per_slice: 1_000_000,
                    max_syscalls,
                })
                .fingerprint()
        };
        let base = build(mask, variants, transform, max_syscalls);
        // Stable: recomputing from identical inputs reproduces it.
        prop_assert_eq!(base, build(mask, variants, transform, max_syscalls));
        // Sensitive: every axis perturbs it.
        prop_assert_ne!(base, build(mask ^ 1, variants, transform, max_syscalls));
        prop_assert_ne!(base, build(mask, variants + 1, transform, max_syscalls));
        prop_assert_ne!(base, build(mask, variants, !transform, max_syscalls));
        prop_assert_ne!(base, build(mask, variants, transform, max_syscalls + 1));
        // The source text is an axis too.
        let other_source = NVariantSystemBuilder::from_source(
            "fn main() -> int { var uid: uid_t; uid = geteuid(); return 0; }",
        )
        .unwrap()
        .config(DeploymentConfig::Custom {
            variation: nvariant_diversity::Variation::UidDiversity { mask },
            variants,
            transform_uids: transform,
        })
        .run_limits(nvariant_vm::RunLimits {
            max_steps_per_slice: 1_000_000,
            max_syscalls,
        })
        .fingerprint();
        prop_assert_ne!(base, other_source);
    }
}
