//! Workspace smoke test: one pass over the whole stack — build a SimC
//! program, deploy it under all four paper configurations, serve a benign
//! workload, and confirm a seeded UID-corruption attack makes the variants
//! diverge where (and only where) the paper says it must.

use nvariant::{DeploymentConfig, NVariantSystemBuilder};
use nvariant_apps::attacks::{run_attack, Attack, AttackClass, AttackResult};
use nvariant_apps::scenarios::run_requests;
use nvariant_apps::workload::WorkloadMix;
use nvariant_types::Uid;

/// A deliberately tiny SimC program: confirm the process starts as root,
/// then exit cleanly. Small enough that a failure points at the deployment
/// pipeline (parse → typecheck → transform → provision → monitor), not at
/// the program.
const TINY_PROGRAM: &str = r"
    var service_uid: uid_t;

    fn main() -> int {
        service_uid = geteuid();
        if (service_uid == 0) {
            return 0;
        }
        return 1;
    }
";

#[test]
fn tiny_program_deploys_under_all_four_paper_configurations() {
    for config in DeploymentConfig::paper_configurations() {
        let mut system = NVariantSystemBuilder::from_source(TINY_PROGRAM)
            .expect("tiny program parses")
            .config(config.clone())
            .initial_uid(Uid::ROOT)
            .build()
            .unwrap_or_else(|e| panic!("{config}: build failed: {e}"));
        assert_eq!(system.variant_count(), config.variant_count(), "{config}");
        let outcome = system.run();
        assert!(outcome.exited_normally(), "{config}: {outcome}");
        assert_eq!(outcome.exit_status, Some(0), "{config}");
        assert!(outcome.alarm.is_none(), "{config}: spurious alarm");
    }
}

#[test]
fn benign_workload_is_served_identically_under_all_four_configurations() {
    // Same seed everywhere, so every configuration serves the same 8 requests.
    let requests = WorkloadMix::standard().request_sequence(8, 0xD1CE);
    let mut reference_bytes = None;
    for config in DeploymentConfig::paper_configurations() {
        let outcome = run_requests(&config, &requests);
        assert!(
            outcome.system.exited_normally(),
            "{config}: {}",
            outcome.system
        );
        assert_eq!(
            outcome.successful_requests(),
            requests.len(),
            "{config}: all benign requests must get a 200"
        );
        // Normal equivalence across configurations: byte-identical service.
        let bytes = outcome.total_response_bytes();
        match reference_bytes {
            None => reference_bytes = Some(bytes),
            Some(expected) => assert_eq!(bytes, expected, "{config}"),
        }
    }
}

#[test]
fn seeded_uid_corruption_diverges_exactly_where_the_paper_predicts() {
    // The relative-overflow corruption: it clobbers the cached UID without
    // touching diversified addresses, so of the four paper configurations
    // only the UID variation can see it.
    let uid_attack = Attack::all()
        .into_iter()
        .find(|a| a.class == AttackClass::UidCorruptionRelative)
        .expect("attack catalogue has a relative UID-corruption attack");

    for config in DeploymentConfig::paper_configurations() {
        let outcome = run_attack(&config, &uid_attack);
        if config == DeploymentConfig::TwoVariantUid {
            // The UID variation re-expresses the corrupted data, so the
            // variants' canonical UID values disagree and the monitor kills
            // the group with a divergence alarm.
            assert_eq!(outcome.result, AttackResult::Detected, "{outcome:?}");
            let alarm = outcome.alarm.as_deref().expect("divergence alarm");
            assert!(
                alarm.contains("divergent"),
                "alarm should report divergent variants: {alarm}"
            );
        } else {
            // Every other paper configuration leaves UID data uniform across
            // the deployment, so the same attack must keep succeeding —
            // the class-specificity half of the paper's claim.
            assert_eq!(outcome.result, AttackResult::Succeeded, "{outcome:?}");
            assert!(outcome.alarm.is_none(), "{outcome:?}");
        }
        assert!(outcome.matches_expectation(), "{outcome:?}");
    }
}
