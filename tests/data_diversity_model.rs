//! Integration test of the paper's model (Figure 2, §2): normal equivalence
//! and detection, checked end to end through the public API.

use nvariant::prelude::*;
use nvariant_diversity::verify_variation;
use proptest::prelude::*;

/// The program used for the normal-equivalence checks: it exercises every
/// kind of UID flow (kernel to program, program to kernel, constants,
/// comparisons, external data via /etc/passwd) without any vulnerability.
const CLEAN_SERVER: &str = r#"
    var service_uid: uid_t;

    fn lookup(name: ptr) -> uid_t {
        var fd: int;
        var text: buf[1024];
        var n: int;
        var pos: int;
        var field: int;
        var value: int;
        fd = open("/etc/passwd", 0);
        if (fd < 0) { return 0; }
        n = read(fd, &text, 1000);
        close(fd);
        text[n] = 0;
        pos = 0;
        while (text[pos] != 0) {
            if (starts_with(text + pos, name)) {
                field = 0;
                while (field < 2) {
                    while (text[pos] != ':') { pos = pos + 1; }
                    pos = pos + 1;
                    field = field + 1;
                }
                value = 0;
                while (text[pos] >= '0' && text[pos] <= '9') {
                    value = value * 10 + (text[pos] - '0');
                    pos = pos + 1;
                }
                return value;
            }
            while (text[pos] != 0 && text[pos] != '\n') { pos = pos + 1; }
            if (text[pos] == '\n') { pos = pos + 1; }
        }
        return 0;
    }

    fn main() -> int {
        var rc: int;
        service_uid = lookup("httpd");
        if (service_uid == 0) { return 1; }
        if (service_uid >= 65534) { return 2; }
        rc = setuid(service_uid);
        if (rc != 0) { return 3; }
        if (geteuid() == 0) { return 4; }
        if (geteuid() != getuid()) { return 5; }
        return 0;
    }
"#;

#[test]
fn normal_equivalence_holds_across_all_configurations() {
    // The same program produces the same observable behaviour whether run
    // unprotected, transformed, or as any 2-variant system.
    let mut reference = None;
    for config in DeploymentConfig::paper_configurations() {
        let mut system = NVariantSystemBuilder::from_source(CLEAN_SERVER)
            .unwrap()
            .config(config.clone())
            .initial_uid(Uid::ROOT)
            .build()
            .unwrap();
        let outcome = system.run();
        assert!(outcome.exited_normally(), "{config}: {outcome}");
        assert_eq!(outcome.exit_status, Some(0), "{config}");
        // Kernel-visible effect is identical: the group dropped to uid 48.
        let group_uid = match system.monitor() {
            Some(monitor) => monitor
                .kernel()
                .credentials(monitor.group_pid())
                .unwrap()
                .euid(),
            None => Uid::new(48),
        };
        match reference {
            None => reference = Some(group_uid),
            Some(expected) => assert_eq!(group_uid, expected, "{config}"),
        }
    }
}

#[test]
fn the_two_variants_really_operate_on_different_concrete_data() {
    let mut system = NVariantSystemBuilder::from_source(CLEAN_SERVER)
        .unwrap()
        .config(DeploymentConfig::TwoVariantUid)
        .initial_uid(Uid::ROOT)
        .build()
        .unwrap();
    let outcome = system.run();
    assert!(outcome.exited_normally(), "{outcome}");
    let monitor = system.monitor().unwrap();
    let p0 = monitor.variant_process(VariantId::P0);
    let p1 = monitor.variant_process(VariantId::P1);
    let addr0 = p0.global_addr("service_uid").unwrap();
    let addr1 = p1.global_addr("service_uid").unwrap();
    let raw0 = p0.read_word(addr0).unwrap();
    let raw1 = p1.read_word(addr1).unwrap();
    // Different concrete representations ...
    assert_ne!(raw0, raw1);
    // ... of the same canonical value.
    assert_eq!(raw0.as_u32(), 48);
    assert_eq!(raw1.as_u32(), 48 ^ 0x7FFF_FFFF);
}

#[test]
fn table1_variations_satisfy_inverse_and_disjointedness() {
    for variation in [
        Variation::address_partitioning(),
        Variation::extended_address_partitioning(0x40),
        Variation::instruction_tagging(),
        Variation::uid_diversity(),
    ] {
        let report = verify_variation(&variation, 2);
        assert!(report.all_hold(), "{variation}: {report}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The detection property the monitor relies on, at the value level:
    /// whatever single concrete word an attacker manages to place into the
    /// UID data of *both* variants (the most replicated input allows), the
    /// two variants' canonical interpretations of it differ — so the first
    /// UID-carrying system call or detection call must raise an alarm.
    #[test]
    fn prop_any_injected_uid_value_has_divergent_meanings(injected in any::<u32>()) {
        use nvariant_diversity::{Canonicalizer, VariantSet};
        use nvariant_types::Word;
        let specs = VariantSet::from_variation(&Variation::uid_diversity(), 2);
        let c0 = Canonicalizer::new(*specs.spec(VariantId::P0));
        let c1 = Canonicalizer::new(*specs.spec(VariantId::P1));
        let word = Word::from_u32(injected);
        prop_assert_ne!(c0.canonical_uid(word), c1.canonical_uid(word));
    }

    /// Normal equivalence at the value level: legitimately produced UID data
    /// (re-expressed per variant by the kernel boundary) always
    /// canonicalizes back to the same meaning in both variants.
    #[test]
    fn prop_legitimate_uid_values_stay_equivalent(canonical in any::<u32>()) {
        use nvariant_diversity::{Canonicalizer, VariantSet};
        use nvariant_types::Word;
        let specs = VariantSet::from_variation(&Variation::uid_diversity(), 2);
        let c0 = Canonicalizer::new(*specs.spec(VariantId::P0));
        let c1 = Canonicalizer::new(*specs.spec(VariantId::P1));
        let word = Word::from_u32(canonical);
        let in_v0 = c0.reexpress_uid(word);
        let in_v1 = c1.reexpress_uid(word);
        prop_assert_ne!(in_v0, in_v1);
        prop_assert_eq!(c0.canonical_uid(in_v0), c1.canonical_uid(in_v1));
    }
}
