//! The campaign engine's determinism contract, end to end over the real
//! case-study server: a plan run with the same seed produces a
//! byte-identical canonical `CampaignReport` serialization regardless of
//! the worker count — and regardless of how the matrix is sharded across
//! runs.

use nvariant::DeploymentConfig;
use nvariant_apps::campaigns::{
    full_matrix_campaign, security_sweep_configs, security_sweep_worlds,
};
use nvariant_apps::scenarios::compiled_httpd_system;
use nvariant_campaign::{CampaignPlan, CampaignReport, Scenario};
use nvariant_simos::WorldTemplate;

#[test]
fn full_matrix_campaign_is_byte_identical_at_1_and_4_workers() {
    let campaign = full_matrix_campaign(&security_sweep_configs(), &[], 6, 2).seed(0x0D15_EA5E);
    let serial = campaign.run(1);
    let parallel = campaign.run(4);
    assert_eq!(serial.cells.len(), 5 * 4 * 2);
    assert_eq!(serial.canonical_text(), parallel.canonical_text());
    // The reports really observed work: attacks were judged, pages served.
    assert!(parallel.judged_cells() > 0);
    assert!(parallel.request_tally().ok > 0);
    assert!(parallel.verdict_mismatches().is_empty());
}

#[test]
fn world_axis_campaign_is_byte_identical_across_worker_counts() {
    let configs = [
        DeploymentConfig::Unmodified,
        DeploymentConfig::TwoVariantUid,
    ];
    let campaign = full_matrix_campaign(&configs, &security_sweep_worlds(), 4, 1).seed(0xA5);
    let serial = campaign.run(1);
    let parallel = campaign.run(4);
    // 2 configs × 4 worlds × (1 benign + 3 attacks).
    assert_eq!(serial.cells.len(), 2 * 4 * 4);
    assert_eq!(serial.canonical_text(), parallel.canonical_text());
    // Every world really appears in the canonical serialization.
    for world in ["standard", "alt-accounts", "alt-docroot", "faulty-fs"] {
        assert!(
            serial
                .canonical_text()
                .contains(&format!("world={world:?}")),
            "{world} missing from canonical text"
        );
    }
}

#[test]
fn different_seeds_change_the_canonical_serialization() {
    let configs = [DeploymentConfig::TwoVariantUid];
    let base = full_matrix_campaign(&configs, &[], 6, 1);
    let a = base.clone().seed(1).run(2);
    let b = base.seed(2).run(2);
    // Seeded benign workloads draw different request sequences, so the
    // canonical text must differ (the seeds are embedded in it anyway).
    assert_ne!(a.canonical_text(), b.canonical_text());
}

#[test]
fn seed_guarantees_reach_per_cell_exchanges() {
    // Byte-identical exchanges, not just matching summaries: rerun the same
    // plan twice at different worker counts and diff the raw traffic.
    let campaign = CampaignPlan::new("exchange-level")
        .config(compiled_httpd_system(&DeploymentConfig::TwoVariantAddress))
        .world(WorldTemplate::standard())
        .world(WorldTemplate::alternate_docroot())
        .scenario(Scenario::new("seeded-path", |_, seed| {
            vec![format!("GET /index.html HTTP/1.0\r\nX-Seed: {seed}\r\n\r\n").into_bytes()]
        }))
        .replicates(3);
    let first = campaign.run(4);
    let second = campaign.run(2);
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.exchanges, b.exchanges);
        assert_eq!(a.outcome, b.outcome);
    }
    // Both worlds serve the page (same names, different trees).
    assert!(first.cells.iter().all(|c| c.tally().ok == 1));
}

#[test]
fn shard_merge_reproduces_the_unsharded_report_through_the_codec() {
    let configs = [
        DeploymentConfig::Unmodified,
        DeploymentConfig::TwoVariantUid,
    ];
    let worlds = [WorldTemplate::standard(), WorldTemplate::faulty_fs()];
    let plan = full_matrix_campaign(&configs, &worlds, 4, 2).seed(0x00C0_FFEE);
    let whole = plan.run(4);
    for (count, workers) in [(2, 1), (4, 4)] {
        let merged = CampaignReport::merge((0..count).map(|index| {
            // Round-trip every shard through the interchange text format,
            // exactly what separate processes exchange.
            let shard = plan.run_shard(index, count, workers);
            CampaignReport::from_shard_text(&shard.to_shard_text()).expect("shard text parses")
        }))
        .expect("shards merge");
        assert_eq!(
            merged.canonical_text(),
            whole.canonical_text(),
            "{count} shards at {workers} workers"
        );
    }
}
