//! The campaign engine's determinism contract, end to end over the real
//! case-study server: a campaign run with the same seed produces a
//! byte-identical canonical `CampaignReport` serialization regardless of
//! the worker count.

use nvariant::DeploymentConfig;
use nvariant_apps::campaigns::{full_matrix_campaign, security_sweep_configs};
use nvariant_apps::scenarios::compiled_httpd_system;
use nvariant_campaign::{Campaign, Scenario};

#[test]
fn full_matrix_campaign_is_byte_identical_at_1_and_4_workers() {
    let campaign = full_matrix_campaign(&security_sweep_configs(), 6, 2).seed(0xD15EA5E);
    let serial = campaign.run(1);
    let parallel = campaign.run(4);
    assert_eq!(serial.cells.len(), 5 * 4 * 2);
    assert_eq!(serial.canonical_text(), parallel.canonical_text());
    // The reports really observed work: attacks were judged, pages served.
    assert!(parallel.judged_cells() > 0);
    assert!(parallel.request_tally().ok > 0);
    assert!(parallel.verdict_mismatches().is_empty());
}

#[test]
fn different_seeds_change_the_canonical_serialization() {
    let configs = [DeploymentConfig::TwoVariantUid];
    let base = full_matrix_campaign(&configs, 6, 1);
    let a = base.clone().seed(1).run(2);
    let b = base.seed(2).run(2);
    // Seeded benign workloads draw different request sequences, so the
    // canonical text must differ (the seeds are embedded in it anyway).
    assert_ne!(a.canonical_text(), b.canonical_text());
}

#[test]
fn seed_guarantees_reach_per_cell_exchanges() {
    // Byte-identical exchanges, not just matching summaries: rerun the same
    // campaign twice at different worker counts and diff the raw traffic.
    let campaign = Campaign::new("exchange-level")
        .config(compiled_httpd_system(&DeploymentConfig::TwoVariantAddress))
        .scenario(Scenario::new("seeded-path", |_, seed| {
            vec![format!("GET /index.html HTTP/1.0\r\nX-Seed: {seed}\r\n\r\n").into_bytes()]
        }))
        .replicates(3);
    let first = campaign.run(4);
    let second = campaign.run(2);
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.exchanges, b.exchanges);
        assert_eq!(a.outcome, b.outcome);
    }
}
