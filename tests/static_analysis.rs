//! Repo-level tests for the static diversity verifier (`nvariant_analyze`):
//!
//! 1. A **proptest over the security sweep**: for every sampled
//!    (configuration, world) point of the evaluation matrix, the verifier
//!    is clean over the bundled httpd's variant pairs, the verdict stored
//!    by a `verify_diversity` build agrees with the full reports, and the
//!    artifact still deploys into the sampled world — analysis is a static
//!    property of the artifact, so the world axis must never change it.
//! 2. A **committed golden fixture** pinning the rendered diagnostics of
//!    the seeded weakened-transform regression (UID reexpression skipping
//!    `server_uid`): the P-Residual finding must keep naming the exact pc.
//!    Regenerate (only when a PR deliberately changes the compiler's code
//!    layout or the report format) with
//!    `NVARIANT_REGEN_GOLDEN=1 cargo test --test static_analysis`.

use nvariant::analyze::{combined_verdict, verdict_is_clean};
use nvariant::{DeploymentConfig, NVariantSystemBuilder};
use nvariant_apps::campaigns::{security_sweep_configs, security_sweep_worlds};
use nvariant_apps::{
    httpd_analysis_reports, httpd_source, weakened_transform_analysis_reports,
    weakened_transform_options,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("static_analysis_weakened_golden.txt")
}

/// The rendered weakened-transform reports over the one configuration
/// whose pair relates UIDs — deterministic down to the byte.
fn weakened_report_text() -> String {
    let reports = weakened_transform_analysis_reports(&DeploymentConfig::TwoVariantUid);
    let mut text = String::new();
    for report in &reports {
        text.push_str(&report.render());
        text.push('\n');
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every point of the security evaluation matrix analyzes clean, the
    /// cached verdict line agrees with the full reports, and the world
    /// axis is irrelevant to the (static) analysis.
    #[test]
    fn security_sweep_is_clean_at_every_matrix_point(
        config_index in 0usize..5,
        world_index in 0usize..6,
    ) {
        let configs = security_sweep_configs();
        let worlds = security_sweep_worlds();
        let config = &configs[config_index % configs.len()];
        let world = &worlds[world_index % worlds.len()];

        let reports = httpd_analysis_reports(config);
        for report in &reports {
            prop_assert!(
                report.is_clean(),
                "{} in world {}: {}",
                config.label(),
                world.name(),
                report.render()
            );
        }
        let verdict = combined_verdict(&reports);
        prop_assert!(verdict_is_clean(&verdict), "{verdict}");

        // The verify_diversity build path must store the same verdict the
        // full reports produce, and the artifact must still deploy into
        // the sampled world.
        let compiled = NVariantSystemBuilder::from_source(httpd_source())
            .unwrap()
            .config(config.clone())
            .verify_diversity(true)
            .compile()
            .unwrap();
        prop_assert_eq!(compiled.analysis(), Some(verdict.as_str()));
        drop(compiled.instantiate_in(world.kernel()));
    }
}

#[test]
fn weakened_transform_diagnostics_match_the_committed_golden_fixture() {
    let text = weakened_report_text();
    let path = golden_path();
    if std::env::var_os("NVARIANT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it on a known-good \
             tree with NVARIANT_REGEN_GOLDEN=1 cargo test --test static_analysis",
            path.display()
        )
    });
    assert!(
        text == golden,
        "weakened-transform diagnostics drifted from the committed golden \
         fixture; if this PR deliberately changes the compiler's layout or \
         the report format, regenerate with NVARIANT_REGEN_GOLDEN=1.\n\
         got:\n{text}\ngolden:\n{golden}"
    );
    // Belt and braces on the property the fixture exists to pin: the
    // residual finding names an exact pc at the untransformed constant.
    assert!(text.contains("P-Residual at pc 0x"), "{text}");
    assert!(text.contains("cc_eq"), "{text}");
}

#[test]
fn weakened_transform_is_flagged_exactly_where_uids_are_related() {
    for config in DeploymentConfig::paper_configurations() {
        let reports = weakened_transform_analysis_reports(&config);
        let expect_findings = matches!(config, DeploymentConfig::TwoVariantUid);
        let found: usize = reports.iter().map(|r| r.findings.len()).sum();
        assert_eq!(
            found > 0,
            expect_findings,
            "{}: {} finding(s)",
            config.label(),
            found
        );
    }
    // The skip list is what weakens the transform — it must name the
    // attacked global and nothing else.
    assert_eq!(
        weakened_transform_options().skip_reexpression_globals,
        vec![nvariant_apps::checks::ATTACKED_GLOBAL.to_string()]
    );
}
