//! Integration test of the Figure 1 scenario: address-space partitioning
//! detects complete absolute-address injection, and the extended variant of
//! Bruschi et al. additionally perturbs partial overwrites.

use nvariant::prelude::*;
use nvariant_diversity::AddressTransform;

const ABSOLUTE_WRITE: &str = r"
    var target: int = 5;
    fn main() -> int {
        var p: ptr;
        p = 0x00100000;
        *p = 99;
        return target;
    }
";

#[test]
fn absolute_address_injection_succeeds_alone_and_is_detected_partitioned() {
    let mut single = NVariantSystemBuilder::from_source(ABSOLUTE_WRITE)
        .unwrap()
        .config(DeploymentConfig::Unmodified)
        .build()
        .unwrap();
    let outcome = single.run();
    // The absolute write landed on the global and changed the exit status.
    assert_eq!(outcome.exit_status, Some(99));

    let mut partitioned = NVariantSystemBuilder::from_source(ABSOLUTE_WRITE)
        .unwrap()
        .config(DeploymentConfig::TwoVariantAddress)
        .build()
        .unwrap();
    let outcome = partitioned.run();
    assert!(outcome.detected_attack());
    let alarm = outcome.alarm.unwrap();
    assert!(matches!(alarm.kind, DivergenceKind::VariantFault { .. }));
}

#[test]
fn partitioned_variants_serve_identical_content_from_disjoint_address_spaces() {
    use nvariant_apps::scenarios::run_requests;
    use nvariant_apps::workload::benign_request;
    let outcome = run_requests(
        &DeploymentConfig::TwoVariantAddress,
        &[benign_request("/index.html"), benign_request("/news.html")],
    );
    assert!(outcome.system.exited_normally(), "{}", outcome.system);
    assert_eq!(outcome.successful_requests(), 2);
}

#[test]
fn extended_partitioning_also_skews_relative_layout() {
    let base = Variation::address_partitioning().variant_specs(2);
    let extended = Variation::extended_address_partitioning(0x40).variant_specs(2);
    assert_eq!(base[1].addr, AddressTransform::PartitionHigh);
    assert_eq!(
        extended[1].addr,
        AddressTransform::PartitionHighWithOffset(0x40)
    );
    // The extended variant displaces every address by the partition bit plus
    // the offset, so even a low-order partial overwrite lands differently.
    assert_ne!(base[1].addr.displacement(), extended[1].addr.displacement());

    // And a custom deployment using it still runs cleanly.
    let config = DeploymentConfig::Custom {
        variation: Variation::extended_address_partitioning(0x40),
        variants: 2,
        transform_uids: false,
    };
    let mut system = NVariantSystemBuilder::from_source(
        "fn main() -> int { var b: buf[32]; strcpy(&b, \"hello\"); return strlen(&b); }",
    )
    .unwrap()
    .config(config)
    .build()
    .unwrap();
    let outcome = system.run();
    assert_eq!(outcome.exit_status, Some(5));
}

#[test]
fn instruction_tagging_deployment_detects_nothing_on_clean_runs() {
    let mut system = NVariantSystemBuilder::from_source(
        "fn main() -> int { var i: int = 0; while (i < 50) { i = i + 1; } return i; }",
    )
    .unwrap()
    .config(DeploymentConfig::two_variant_instruction_tagging())
    .build()
    .unwrap();
    let outcome = system.run();
    assert_eq!(outcome.exit_status, Some(50));
    assert!(!outcome.detected_attack());
}
