//! Integration test of the Table 3 *shape*: the relative overheads the
//! paper reports must emerge from the measured execution, even though the
//! absolute numbers come from a simulated cost model rather than a 2008
//! Pentium 4.
//!
//! Paper shape:
//! * Configuration 2 (source transformation only) is essentially free;
//! * Configurations 3 and 4 (two variants) lose roughly half their
//!   throughput under saturated load, but only ~10–15% unsaturated;
//! * Configuration 4 costs at most a few percent more than Configuration 3.

use nvariant::DeploymentConfig;
use nvariant_apps::workload::{LoadLevel, WebBench};

fn measurements() -> Vec<(u8, f64, f64, f64)> {
    // (config number, unsat throughput, sat throughput, sat latency)
    let bench = WebBench::default();
    let unsat = LoadLevel {
        clients: 1,
        requests_per_client: 18,
    };
    let sat = LoadLevel {
        clients: 15,
        requests_per_client: 2,
    };
    DeploymentConfig::paper_configurations()
        .into_iter()
        .map(|config| {
            let u = bench.measure(&config, &unsat);
            let s = bench.measure(&config, &sat);
            assert!(u.all_requests_succeeded, "{config}");
            assert!(s.all_requests_succeeded, "{config}");
            (
                config.paper_number().unwrap(),
                u.throughput_kb_s,
                s.throughput_kb_s,
                s.latency_ms,
            )
        })
        .collect()
}

#[test]
fn table3_shape_is_reproduced() {
    let rows = measurements();
    let (_, unsat1, sat1, satlat1) = rows[0];
    let (_, unsat2, sat2, _) = rows[1];
    let (_, unsat3, sat3, satlat3) = rows[2];
    let (_, unsat4, sat4, satlat4) = rows[3];

    // Configuration 2: the source transformation alone costs almost nothing
    // (paper: -3.7% unsaturated, -0.9% saturated).
    assert!((sat1 - sat2).abs() / sat1 < 0.10, "sat {sat1} vs {sat2}");
    assert!(
        (unsat1 - unsat2).abs() / unsat1 < 0.10,
        "unsat {unsat1} vs {unsat2}"
    );

    // Configurations 3 and 4: saturated throughput drops close to half
    // (paper: -56% and -58%) because all computation is duplicated.
    let drop3 = (sat1 - sat3) / sat1;
    let drop4 = (sat1 - sat4) / sat1;
    assert!(
        drop3 > 0.30 && drop3 < 0.65,
        "config 3 saturated drop {drop3}"
    );
    assert!(
        drop4 > 0.30 && drop4 < 0.70,
        "config 4 saturated drop {drop4}"
    );

    // Unsaturated, the loss is much smaller because the request is
    // I/O-bound (paper: -12.2% and -13.2%).
    let unsat_drop3 = (unsat1 - unsat3) / unsat1;
    assert!(
        unsat_drop3 < drop3,
        "unsaturated drop {unsat_drop3} should be smaller than saturated drop {drop3}"
    );
    assert!(unsat_drop3 < 0.35, "unsaturated drop {unsat_drop3}");

    // The UID variation costs only a few percent on top of the two-variant
    // baseline (paper: -4.5% saturated, -1% unsaturated).
    let uid_extra_sat = (sat3 - sat4) / sat3;
    assert!(
        uid_extra_sat < 0.15,
        "UID variation extra cost {uid_extra_sat}"
    );
    let uid_extra_unsat = (unsat3 - unsat4) / unsat3;
    assert!(
        uid_extra_unsat < 0.12,
        "UID variation extra unsat cost {uid_extra_unsat}"
    );

    // Latency moves the other way: saturated latency grows substantially for
    // the two-variant systems (paper: +129%, +136%).
    assert!(satlat3 > satlat1 * 1.3, "latency {satlat1} -> {satlat3}");
    assert!(satlat4 >= satlat3 * 0.95);
}

#[test]
fn redundant_computation_is_visible_in_the_instruction_counts() {
    let bench = WebBench::default();
    let load = LoadLevel {
        clients: 2,
        requests_per_client: 3,
    };
    let single = bench.measure(&DeploymentConfig::Unmodified, &load);
    let dual = bench.measure(&DeploymentConfig::TwoVariantAddress, &load);
    // Two variants execute roughly twice the instructions for the same work.
    let ratio = dual.total_instructions as f64 / single.total_instructions as f64;
    assert!(ratio > 1.8 && ratio < 2.3, "instruction ratio {ratio}");
    // And only the N-variant configuration pays for monitor checks.
    assert_eq!(single.monitor_checks, 0);
    assert!(dual.monitor_checks > 0);
}
