//! The plan-hash merge gate, end to end over the real case-study server.
//!
//! PR 3's `CampaignReport::merge` checked only `name` and `base_seed`:
//! shards from differently-shaped plans (different config/world/scenario
//! axes under the same name), or a strict subset of a plan's shards,
//! merged silently into a wrong-but-plausible report. These tests pin the
//! fix: every report carries its plan's canonical hash and matrix shape,
//! and merging is validation-only against them.

use nvariant::DeploymentConfig;
use nvariant_apps::campaigns::report_matrix_plan;
use nvariant_apps::scenarios::compiled_httpd_system;
use nvariant_campaign::{CampaignPlan, CampaignReport, MergeError, Scenario};
use nvariant_simos::WorldTemplate;

fn one_cell_scenario(label: &str) -> Scenario {
    Scenario::fixed_requests(label, vec![b"GET / HTTP/1.0\r\n\r\n".to_vec()])
}

fn base_plan(name: &str) -> CampaignPlan {
    CampaignPlan::new(name)
        .config(compiled_httpd_system(&DeploymentConfig::Unmodified))
        .scenario(one_cell_scenario("ping"))
}

#[test]
fn merge_rejects_shards_from_differently_shaped_plans() {
    // Regression for the PR 3 hole: same plan name, same base seed — but
    // one plan grew a second scenario. The old merge combined these into
    // one report whenever the cell coordinates happened not to collide.
    let narrow = base_plan("sweep");
    let wide = base_plan("sweep").scenario(one_cell_scenario("extra"));
    let narrow_report = narrow.run(1);
    // Shard 1 of the wide plan holds only its second scenario's cell, so
    // its coordinates are disjoint from the narrow report's — exactly the
    // shape of accident the name+seed check used to wave through.
    let wide_shard = wide.run_shard(1, 2, 1);
    assert_eq!(narrow_report.name, wide_shard.name);
    assert_eq!(narrow_report.base_seed, wide_shard.base_seed);
    let err = CampaignReport::merge([narrow_report, wide_shard]).unwrap_err();
    assert!(
        matches!(err, MergeError::PlanMismatch { .. }),
        "expected PlanMismatch, got {err:?}"
    );
    assert!(err.to_string().contains("differently shaped plans"));
}

#[test]
fn merge_rejects_strict_subsets_and_names_every_missing_cell() {
    // Regression: merging 2 of 3 shards used to succeed silently.
    let plan = base_plan("subset").replicates(3);
    let whole = plan.run(1);
    let err =
        CampaignReport::merge([plan.run_shard(0, 3, 1), plan.run_shard(2, 3, 1)]).unwrap_err();
    match err {
        MergeError::MissingCells {
            missing,
            covered,
            expected,
        } => {
            assert_eq!(covered, 2);
            assert_eq!(expected, 3);
            // Shard 1 of 3 holds exactly the middle replicate.
            assert_eq!(missing, vec![(0, 0, 0, 1)]);
        }
        other => panic!("expected MissingCells, got {other:?}"),
    }
    // The complete shard set still merges byte-identically.
    let merged = CampaignReport::merge((0..3).map(|index| plan.run_shard(index, 3, 1)))
        .expect("complete shard sets merge");
    assert_eq!(merged.canonical_text(), whole.canonical_text());
}

#[test]
fn plan_hash_separates_quick_and_full_report_matrices() {
    // The report binaries' own footgun: the quick and full matrices share
    // the plan name ("full-matrix") and base seed, differing only on the
    // axes. Their hashes must differ so a coordinator can reject a worker
    // that was invoked with the wrong --quick setting.
    let (quick, _, _) = report_matrix_plan(true);
    let (full, _, _) = report_matrix_plan(false);
    assert_eq!(quick.name(), full.name());
    assert_ne!(quick.plan_hash(), full.plan_hash());
    // And the hash is reproducible across independently built plans — the
    // property that lets separate processes agree on it.
    assert_eq!(quick.plan_hash(), report_matrix_plan(true).0.plan_hash());
    assert_eq!(quick.descriptor(), report_matrix_plan(true).0.descriptor());
}

#[test]
fn reports_carry_their_plan_identity_through_the_codec() {
    let plan = base_plan("codec")
        .world(WorldTemplate::standard())
        .replicates(2);
    let report = plan.run(2);
    assert_eq!(report.plan_hash, plan.plan_hash());
    assert_eq!(report.shape, plan.shape());
    let parsed = CampaignReport::from_shard_text(&report.to_shard_text()).unwrap();
    assert_eq!(parsed.plan_hash, plan.plan_hash());
    assert_eq!(parsed.shape, plan.shape());
    // The canonical serialization embeds the identity, so two reports of
    // differently-shaped plans can never compare byte-identical.
    assert!(report
        .canonical_text()
        .starts_with(&format!("campaign=\"codec\" seed={:#018x}", 0x5EED)));
    assert!(report
        .canonical_text()
        .contains(&format!("plan={:#018x}", plan.plan_hash())));
}

#[test]
fn world_axis_membership_changes_the_plan_hash() {
    // A world template axis with the same *number* of worlds but different
    // membership must not collide: shard seeds agree (seeds hash
    // coordinates, not labels) and the old merge would have blended them.
    let docroot = base_plan("worlds").world(WorldTemplate::alternate_docroot());
    let faulty = base_plan("worlds").world(WorldTemplate::faulty_fs());
    assert_eq!(docroot.shape(), faulty.shape());
    assert_ne!(docroot.plan_hash(), faulty.plan_hash());
    let err =
        CampaignReport::merge([docroot.run_shard(0, 2, 1), faulty.run_shard(1, 2, 1)]).unwrap_err();
    assert!(matches!(err, MergeError::PlanMismatch { .. }), "{err:?}");
}
