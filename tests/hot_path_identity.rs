//! The hot-path identity safety net for the zero-alloc/CoW work: campaign
//! behavior must be bit-for-bit what it was before the interpreter
//! dispatch, code-image sharing, and world-cloning optimizations.
//!
//! Three layers of protection:
//!
//! 1. A **committed golden fixture**: the canonical text of a fixed-seed
//!    quick campaign matrix, generated on the pre-optimization tree and
//!    committed at `tests/fixtures/hot_path_identity_golden.txt`. Any
//!    behavioral drift in the interpreter, kernel, monitor, or report
//!    rendering shows up as a byte diff. Regenerate (only when a PR
//!    *deliberately* changes campaign semantics) with
//!    `NVARIANT_REGEN_GOLDEN=1 cargo test --test hot_path_identity`.
//! 2. A **proptest over random programs** comparing the two instantiate
//!    paths (`instantiate()` against `instantiate_in(kernel_template())`):
//!    identical outcomes and identical `instructions_executed` counts.
//! 3. **CoW isolation units**: one cell's file writes (the bundled httpd
//!    appends an access-log line per request) must never be visible to a
//!    sibling instantiation or to the shared kernel template.

use nvariant::{DeploymentConfig, NVariantSystemBuilder};
use nvariant_apps::campaigns::{
    full_matrix_campaign, security_sweep_configs, security_sweep_worlds,
};
use nvariant_apps::scenarios::compiled_httpd_system;
use nvariant_types::Port;
use proptest::prelude::*;
use std::path::PathBuf;

const GOLDEN_SEED: u64 = 0x1DE7_71CA;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("hot_path_identity_golden.txt")
}

/// The fixed quick matrix: every sweep config × every sweep world ×
/// (benign + attack scenarios), one replicate, fixed seed.
fn golden_matrix_text() -> String {
    full_matrix_campaign(&security_sweep_configs(), &security_sweep_worlds(), 4, 1)
        .seed(GOLDEN_SEED)
        .run(2)
        .canonical_text()
}

#[test]
fn quick_matrix_matches_the_committed_golden_fixture() {
    let text = golden_matrix_text();
    let path = golden_path();
    if std::env::var_os("NVARIANT_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        eprintln!("regenerated {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); generate it on a known-good \
             tree with NVARIANT_REGEN_GOLDEN=1 cargo test --test hot_path_identity",
            path.display()
        )
    });
    assert!(
        text == golden,
        "campaign canonical text drifted from the committed golden fixture \
         (lengths: got {}, golden {}); if this PR deliberately changes \
         campaign semantics, regenerate with NVARIANT_REGEN_GOLDEN=1",
        text.len(),
        golden.len()
    );
}

/// A parameterized SimC program: arithmetic loop feeding a global, a
/// UID-typed syscall pair on a data-dependent branch, and a final exit
/// status derived from the accumulator.
fn program_source(n: u32, mul: u32, add: u32, modv: u32) -> String {
    format!(
        r"
var counter: int;
fn work(n: int) -> int {{
    var i: int = 0;
    var acc: int = 0;
    while (i < n) {{
        acc = acc + i * {mul} + {add};
        i = i + 1;
    }}
    return acc;
}}
fn main() -> int {{
    counter = work({n});
    if (counter % {modv} == 0) {{
        setuid(getuid());
    }}
    return counter % 251;
}}
"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Both instantiate paths — the default-template one and the explicit
    /// world one — produce identical outcomes and executed exactly the
    /// same number of instructions, for random programs under every paper
    /// configuration.
    #[test]
    fn both_instantiate_paths_agree(
        n in 0u32..300,
        mul in 1u32..7,
        add in 0u32..5,
        modv in 1u32..4,
        config_index in 0usize..4,
    ) {
        let config = DeploymentConfig::paper_configurations()
            .into_iter()
            .nth(config_index)
            .unwrap();
        let compiled = NVariantSystemBuilder::from_source(&program_source(n, mul, add, modv))
            .expect("template program parses")
            .config(config)
            .compile()
            .expect("template program compiles");

        let direct = compiled.instantiate().run();
        let via_world = compiled.instantiate_in(compiled.kernel_template()).run();

        prop_assert_eq!(&direct, &via_world);
        prop_assert_eq!(
            direct.metrics.total_instructions,
            via_world.metrics.total_instructions
        );
        prop_assert!(direct.metrics.total_instructions > 0);
    }
}

/// One cell's writes must never leak into a sibling cell. The bundled
/// httpd appends an access-log line per served request, so serving a
/// request from cell A is a real file write; cell B instantiated from the
/// same compiled system afterwards must see the pristine world.
#[test]
fn sibling_cells_do_not_share_file_writes() {
    for config in [
        DeploymentConfig::Unmodified,
        DeploymentConfig::TwoVariantUid,
    ] {
        let compiled = compiled_httpd_system(&config);
        let log_before: Vec<u8> = compiled
            .kernel_template()
            .fs()
            .get("/var/log/httpd.log")
            .map(|inode| inode.data.to_vec())
            .unwrap_or_default();

        let mut a = compiled.instantiate();
        a.kernel_mut()
            .net_mut()
            .preload_request(Port::HTTP, b"GET /index.html HTTP/1.0\r\n\r\n".to_vec());
        let outcome = a.run();
        assert!(outcome.exited_normally(), "{config:?}: cell A failed");
        let log_a = a
            .kernel()
            .fs()
            .get("/var/log/httpd.log")
            .map(|inode| inode.data.to_vec())
            .unwrap_or_default();
        assert!(
            log_a.len() > log_before.len(),
            "{config:?}: cell A never wrote its access log — the isolation \
             assertion below would be vacuous"
        );

        // A sibling instantiated *after* A ran sees the pristine world.
        let b = compiled.instantiate();
        let log_b = b
            .kernel()
            .fs()
            .get("/var/log/httpd.log")
            .map(|inode| inode.data.to_vec())
            .unwrap_or_default();
        assert_eq!(
            log_b, log_before,
            "{config:?}: cell A's write leaked into sibling B"
        );

        // And the shared template itself is untouched.
        let log_template: Vec<u8> = compiled
            .kernel_template()
            .fs()
            .get("/var/log/httpd.log")
            .map(|inode| inode.data.to_vec())
            .unwrap_or_default();
        assert_eq!(
            log_template, log_before,
            "{config:?}: cell A's write leaked into the kernel template"
        );
    }
}
